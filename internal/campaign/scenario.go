package campaign

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/geom"
	"repro/internal/workflow"
)

// TaskKind enumerates the grammar's productions.
type TaskKind uint8

// Task kinds. The testbed grammar composes parameterized tasks; the
// production decks run their canonical workflows (screening on the Hein
// deck, spray-coating on the Berlinguette deck) so the campaign
// exercises the same scripts the paper's studies do.
const (
	TaskFerry TaskKind = iota + 1
	TaskHotplate
	TaskPump
	TaskPatrol
	TaskScreening
	TaskSpray
)

func (k TaskKind) String() string {
	switch k {
	case TaskFerry:
		return "ferry"
	case TaskHotplate:
		return "hotplate"
	case TaskPump:
		return "pump"
	case TaskPatrol:
		return "patrol"
	case TaskScreening:
		return "screening"
	case TaskSpray:
		return "spray"
	default:
		return fmt.Sprintf("task(%d)", int(k))
	}
}

// Task is one grammar production instance with its drawn parameters.
type Task struct {
	Kind TaskKind
	// Ferry: which vial is ferried into the dosing device and how much
	// solid is dosed.
	Vial  string
	Slot  string
	QtyMg float64
	// Hotplate: the setpoint.
	TempC float64
	// Pump: the dosed volume (into the stoppered vial_3).
	VolML float64
	// Patrol: waypoint poses in the patrolling arm's frame.
	Poses []geom.Vec3
}

// FaultKind enumerates the paper's three mutation classes plus "none".
type FaultKind uint8

// Fault kinds (Section IV: the naive programmer "could easily change the
// arguments of commands, delete commands, or change the order of
// commands").
const (
	FaultNone FaultKind = iota
	FaultDelete
	FaultReorder
	FaultMutate
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDelete:
		return "delete"
	case FaultReorder:
		return "reorder"
	case FaultMutate:
		return "mutate"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Mutation is one argument-change fault: either a script location-table
// edit (the Bug D idiom — Loc/Arm/DZ) or a parameter scale already baked
// into the task it names (Param/Scale).
type Mutation struct {
	Arm   string
	Loc   string
	DZ    float64
	Param string
	Task  int
	Scale float64
}

// Fault is one injected bug. Delete removes the step at index Step;
// Reorder moves the step at index Step to position To; Mutate applies
// Mut. StepName/ToName record the affected step names for fingerprints
// and incident details.
type Fault struct {
	Kind     FaultKind
	Step     int
	To       int
	StepName string
	ToName   string
	Mut      Mutation
}

// Scenario is one generated case: a deck variant, a task sequence, and
// at most one injected fault. It is pure data plus deterministic
// derivations — running it is the runner's job.
type Scenario struct {
	Index int
	Seed  uint64
	Deck  *Deck
	Tasks []Task
	Fault Fault
}

// baseSteps materializes the task sequence as named workflow steps,
// before any delete/reorder fault is applied. Parameter mutations are
// already baked into the task values. Step names carry the task index so
// repeated productions stay distinguishable in fingerprints and bundles.
func (sc *Scenario) baseSteps() []workflow.Step {
	switch sc.Deck.LabName {
	case "hein-production":
		return workflow.ScreeningSteps()
	case "berlinguette":
		return workflow.SpraySteps()
	}
	steps := []workflow.Step{
		{Name: "ned2-sleep", Run: func(s *workflow.Session) error {
			return s.Arm("ned2").GoSleep()
		}},
		{Name: "viperx-home", Run: func(s *workflow.Session) error {
			return s.Arm("viperx").GoHome()
		}},
	}
	for ti, t := range sc.Tasks {
		steps = append(steps, taskSteps(ti, t)...)
	}
	return steps
}

// taskSteps expands one testbed production.
func taskSteps(ti int, t Task) []workflow.Step {
	p := fmt.Sprintf("t%d-", ti)
	switch t.Kind {
	case TaskFerry:
		vial, slot, safe, qty := t.Vial, t.Slot, t.Slot+"_safe", t.QtyMg
		return []workflow.Step{
			{Name: p + "open-door", Run: func(s *workflow.Session) error {
				return s.Device("dosing_device").SetDoor(true)
			}},
			{Name: p + "decap", Run: func(s *workflow.Session) error {
				return s.Vial(vial).Decap()
			}},
			{Name: p + "pick-grid", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").PickUpObject(safe, slot, vial)
			}},
			{Name: p + "approach-dd", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").GoToLocation("dd_approach")
			}},
			{Name: p + "place-dd", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").PlaceObject("dd_safe_height", "dd_pickup", vial)
			}},
			{Name: p + "exit-dd", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").GoToLocation("dd_approach")
			}},
			{Name: p + "clear", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").GoHome()
			}},
			{Name: p + "close-door", Run: func(s *workflow.Session) error {
				return s.Device("dosing_device").SetDoor(false)
			}},
			{Name: p + "dose", Run: func(s *workflow.Session) error {
				return s.Device("dosing_device").RunAction(3*time.Second, qty)
			}},
			{Name: p + "stop-dose", Run: func(s *workflow.Session) error {
				return s.Device("dosing_device").Stop()
			}},
			{Name: p + "reopen-door", Run: func(s *workflow.Session) error {
				return s.Device("dosing_device").SetDoor(true)
			}},
			{Name: p + "approach-dd-2", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").GoToLocation("dd_approach")
			}},
			{Name: p + "pick-dd", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").PickUpObject("dd_safe_height", "dd_pickup", vial)
			}},
			{Name: p + "exit-dd-2", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").GoToLocation("dd_approach")
			}},
			{Name: p + "place-grid", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").PlaceObject(safe, slot, vial)
			}},
			{Name: p + "close-door-2", Run: func(s *workflow.Session) error {
				return s.Device("dosing_device").SetDoor(false)
			}},
			{Name: p + "cap", Run: func(s *workflow.Session) error {
				return s.Vial(vial).Cap()
			}},
			{Name: p + "home", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").GoHome()
			}},
		}
	case TaskHotplate:
		// The hotplate only accepts start_action with a container inside
		// (rule general-5), so the task ferries its vial onto the plate,
		// heats, and puts it back.
		vial, slot, safe, temp := t.Vial, t.Slot, t.Slot+"_safe", t.TempC
		return []workflow.Step{
			{Name: p + "hp-pick-grid", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").PickUpObject(safe, slot, vial)
			}},
			{Name: p + "hp-approach", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").GoToLocation("hp_approach")
			}},
			{Name: p + "hp-place", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").PlaceObject("hp_safe", "hp_place", vial)
			}},
			{Name: p + "hp-clear", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").GoHome()
			}},
			{Name: p + "hp-set", Run: func(s *workflow.Session) error {
				return s.Device("hotplate").SetValue(temp)
			}},
			{Name: p + "hp-start", Run: func(s *workflow.Session) error {
				return s.Device("hotplate").Start(60 * time.Second)
			}},
			{Name: p + "hp-stop", Run: func(s *workflow.Session) error {
				return s.Device("hotplate").Stop()
			}},
			{Name: p + "hp-reapproach", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").GoToLocation("hp_approach")
			}},
			{Name: p + "hp-pick-back", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").PickUpObject("hp_safe", "hp_place", vial)
			}},
			{Name: p + "hp-exit", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").GoToLocation("hp_approach")
			}},
			{Name: p + "hp-return", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").PlaceObject(safe, slot, vial)
			}},
			{Name: p + "hp-home", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").GoHome()
			}},
		}
	case TaskPump:
		vol := t.VolML
		return []workflow.Step{
			{Name: p + "pump-decap", Run: func(s *workflow.Session) error {
				return s.Vial("vial_3").Decap()
			}},
			{Name: p + "pump-dose", Run: func(s *workflow.Session) error {
				return s.Device("pump").DoseLiquid("vial_3", vol)
			}},
			{Name: p + "pump-cap", Run: func(s *workflow.Session) error {
				return s.Vial("vial_3").Cap()
			}},
		}
	case TaskPatrol:
		poses := t.Poses
		steps := []workflow.Step{
			{Name: p + "viperx-sleep", Run: func(s *workflow.Session) error {
				return s.Arm("viperx").GoSleep()
			}},
		}
		for pi, pose := range poses {
			pose := pose
			steps = append(steps, workflow.Step{
				Name: fmt.Sprintf("%sned2-pose-%d", p, pi),
				Run: func(s *workflow.Session) error {
					return s.Arm("ned2").MovePose(pose)
				},
			})
		}
		steps = append(steps, workflow.Step{
			Name: p + "ned2-sleep", Run: func(s *workflow.Session) error {
				return s.Arm("ned2").GoSleep()
			},
		})
		return steps
	default:
		return nil
	}
}

// Steps returns the scenario's final script: the base steps with the
// structural fault (delete/reorder) applied. Mutate faults act through
// task parameters (already baked in) or the session location table
// (ApplyLocs).
func (sc *Scenario) Steps() []workflow.Step {
	steps := sc.baseSteps()
	switch sc.Fault.Kind {
	case FaultDelete:
		if i := sc.Fault.Step; i >= 0 && i < len(steps) {
			steps = append(steps[:i:i], steps[i+1:]...)
		}
	case FaultReorder:
		i, j := sc.Fault.Step, sc.Fault.To
		if i >= 0 && i < len(steps) && j >= 0 && j < len(steps) && i != j {
			moved := steps[i]
			rest := append(steps[:i:i], steps[i+1:]...)
			steps = append(rest[:j:j], append([]workflow.Step{moved}, rest[j:]...)...)
		}
	}
	return steps
}

// ApplyLocs applies a location-table mutation (the Bug D idiom: the
// script's own utilities table is edited, not the lab config — RABIT
// only ever sees the resulting raw coordinates).
func (sc *Scenario) ApplyLocs(s *workflow.Session) {
	m := sc.Fault.Mut
	if sc.Fault.Kind != FaultMutate || m.Loc == "" {
		return
	}
	if p, ok := s.Locs.Coord(m.Arm, m.Loc); ok {
		s.Locs.Set(m.Arm, m.Loc, p.Add(geom.V(0, 0, m.DZ)))
	}
}

// Fingerprint renders the scenario deterministically — the byte-stream
// identity the determinism property tests compare.
func (sc *Scenario) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "s%07d seed=%016x deck=[%s] tasks=[", sc.Index, sc.Seed, sc.Deck.Fingerprint)
	for i, t := range sc.Tasks {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch t.Kind {
		case TaskFerry:
			fmt.Fprintf(&b, "ferry(%s@%s,%.1fmg)", t.Vial, t.Slot, t.QtyMg)
		case TaskHotplate:
			fmt.Fprintf(&b, "hotplate(%s,%.0fC)", t.Vial, t.TempC)
		case TaskPump:
			fmt.Fprintf(&b, "pump(%.1fmL)", t.VolML)
		case TaskPatrol:
			fmt.Fprintf(&b, "patrol(%d", len(t.Poses))
			for _, p := range t.Poses {
				fmt.Fprintf(&b, ",%.3f/%.3f/%.3f", p.X, p.Y, p.Z)
			}
			b.WriteByte(')')
		default:
			b.WriteString(t.Kind.String())
		}
	}
	b.WriteString("] fault=")
	f := sc.Fault
	switch f.Kind {
	case FaultNone:
		b.WriteString("none")
	case FaultDelete:
		fmt.Fprintf(&b, "delete(%s)", f.StepName)
	case FaultReorder:
		fmt.Fprintf(&b, "reorder(%s->%d:%s)", f.StepName, f.To, f.ToName)
	case FaultMutate:
		if f.Mut.Loc != "" {
			fmt.Fprintf(&b, "mutate(loc=%s arm=%s dz=%+.3f)", f.Mut.Loc, f.Mut.Arm, f.Mut.DZ)
		} else {
			fmt.Fprintf(&b, "mutate(%s[t%d]x%.1f)", f.Mut.Param, f.Mut.Task, f.Mut.Scale)
		}
	}
	return b.String()
}
