// Package campaign is the generative safety-benchmark engine (ROADMAP
// item 3): a deterministic seeded scenario generator — randomized decks,
// workflow sequences drawn from a grammar over internal/workflow, and
// fault injections in the three classes of the paper's Section IV
// ("delete commands, change the order of commands, change the arguments
// of commands") — plus a parallel campaign runner that replays each
// scenario twice: once unprotected against the ground-truth world (the
// oracle for whether the injection was actually unsafe) and once through
// the full RABIT stack (did the checker catch it).
//
// Determinism is the package's hard contract: a scenario is a pure
// function of (campaign seed, scenario index), and campaign summaries
// accumulate only order-independent integers, so the same seed yields
// byte-identical scenario streams and identical summaries at any worker
// count.
package campaign

// rng is a splitmix64 generator: tiny, fast, and — unlike math/rand —
// trivially seedable per scenario index so two scenarios never share a
// stream. The campaign's determinism contract hangs on this being a pure
// function of its seed.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

// mix64 is the splitmix64 output function, used both inside the stream
// and as a standalone hash for deriving per-scenario seeds.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return mix64(r.s)
}

// intn returns a value in [0, n). The modulo bias is irrelevant here —
// choices are tiny relative to 2^64 — and the simplicity keeps the
// stream easy to reproduce in other tooling.
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// float returns a value in [0, 1) from the top 53 bits.
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// ScenarioSeed derives scenario index i's private seed from the campaign
// master seed. It is a pure function — the generator and any external
// tool replaying a single scenario agree without sharing state.
func ScenarioSeed(master uint64, index int) uint64 {
	return mix64(master ^ mix64(uint64(index)+0x51ed2701a9b4d22f))
}
