package campaign

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/geom"
	"repro/internal/labs"
)

// DefaultDecksPerLab is how many deck variants each lab contributes
// (variant 0 is always the pristine paper deck).
const DefaultDecksPerLab = 3

// Generator produces scenarios as pure functions of (master seed,
// index). Construction precompiles every deck variant — the shared
// immutables both runner modes draw from.
type Generator struct {
	master uint64
	labs   [3][]*Deck // testbed, hein-production, berlinguette
}

// NewGenerator builds the deck-variant pool for the three lab configs.
func NewGenerator(master uint64, decksPerLab int) (*Generator, error) {
	if decksPerLab <= 0 {
		decksPerLab = DefaultDecksPerLab
	}
	specs := []*config.LabSpec{labs.TestbedSpec(), labs.HeinProductionSpec(), labs.BerlinguetteSpec()}
	g := &Generator{master: master}
	for li, spec := range specs {
		for v := 0; v < decksPerLab; v++ {
			d, err := buildDeck(spec, master, v)
			if err != nil {
				return nil, err
			}
			g.labs[li] = append(g.labs[li], d)
		}
	}
	return g, nil
}

// Decks returns every variant, testbed first.
func (g *Generator) Decks() []*Deck {
	var out []*Deck
	for _, l := range g.labs {
		out = append(out, l...)
	}
	return out
}

// Master returns the campaign seed.
func (g *Generator) Master() uint64 { return g.master }

// faultRate is the fraction of scenarios that carry an injection; the
// rest are the clean control population the false-alarm rate is measured
// on.
const faultRate = 0.45

// Scenario generates scenario i. Every random draw flows through one
// splitmix64 stream seeded from ScenarioSeed(master, i), so the result
// is identical no matter which worker — or which process — asks.
func (g *Generator) Scenario(i int) *Scenario {
	r := newRNG(ScenarioSeed(g.master, i))
	sc := &Scenario{Index: i, Seed: ScenarioSeed(g.master, i)}

	// Lab mix: the testbed's parameterized grammar gets half the budget,
	// the two production decks' canonical workflows split the rest.
	var li int
	switch r.intn(4) {
	case 0, 1:
		li = 0
	case 2:
		li = 1
	default:
		li = 2
	}
	variants := g.labs[li]
	sc.Deck = variants[r.intn(len(variants))]

	switch li {
	case 0:
		sc.Tasks = testbedTasks(r)
	case 1:
		sc.Tasks = []Task{{Kind: TaskScreening}}
	default:
		sc.Tasks = []Task{{Kind: TaskSpray}}
	}

	if r.float() < faultRate {
		g.injectFault(sc, r)
	}
	return sc
}

// testbedTasks draws 1–2 distinct parameterized tasks, optionally
// followed by a Ned2 patrol (always last: the patrol puts ViperX to
// sleep, honoring the one-arm-awake discipline for the rest of the run).
func testbedTasks(r *rng) []Task {
	pool := []TaskKind{TaskFerry, TaskHotplate, TaskPump}
	for i := len(pool) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		pool[i], pool[j] = pool[j], pool[i]
	}
	n := 1 + r.intn(2)
	// Ferry and hotplate both need a grid vial; one bit splits the two
	// vials between them so the tasks never contend for the same object.
	ferryVial := r.intn(2)
	vials := [2][2]string{{"vial_1", "grid_NW"}, {"vial_2", "grid_SW"}}
	var tasks []Task
	for _, kind := range pool[:n] {
		switch kind {
		case TaskFerry:
			v := vials[ferryVial]
			tasks = append(tasks, Task{Kind: TaskFerry, Vial: v[0], Slot: v[1], QtyMg: 2 + 0.5*float64(r.intn(9))})
		case TaskHotplate:
			v := vials[1-ferryVial]
			tasks = append(tasks, Task{Kind: TaskHotplate, Vial: v[0], Slot: v[1], TempC: 60 + 10*float64(r.intn(9))})
		case TaskPump:
			tasks = append(tasks, Task{Kind: TaskPump, VolML: 2 + 0.5*float64(r.intn(9))})
		}
	}
	if r.float() < 0.25 {
		// Patrol waypoints live in an envelope swept offline for
		// transit safety (every pose pair, every deck variant): the
		// sector right of the Ned2 base, clear of the centrifuge, and
		// near enough that IK keeps one wrist configuration — large
		// yaw or reach jumps make joint-space interpolation swing the
		// elbow through the centrifuge.
		m := 2 + r.intn(2)
		t := Task{Kind: TaskPatrol}
		for p := 0; p < m; p++ {
			// Poses are in the Ned2's own frame (base at deck (0.8, 0, 0)).
			t.Poses = append(t.Poses, geom.V(
				-0.02+0.02*float64(r.intn(8)),
				0.01+0.02*float64(r.intn(10)),
				0.32+0.01*float64(r.intn(3))))
		}
		tasks = append(tasks, t)
	}
	return tasks
}

// mutPoint is one argument-change site the grammar exposes.
type mutPoint struct {
	arm, loc string // location-table edit (Bug D idiom)
	param    string // or a task-parameter scale
	task     int
}

// mutationPoints lists the scenario's argument-change sites in
// deterministic order.
func mutationPoints(sc *Scenario) []mutPoint {
	switch sc.Deck.LabName {
	case "hein-production":
		return []mutPoint{
			{arm: "ur3e", loc: "dd_pickup"},
			{arm: "ur3e", loc: "ts_place"},
			{arm: "ur3e", loc: "cf_slot"},
		}
	case "berlinguette":
		return []mutPoint{
			{arm: "ur5e", loc: "coater_chuck"},
			{arm: "ur5e", loc: "rack_B"},
		}
	}
	var pts []mutPoint
	for ti, t := range sc.Tasks {
		switch t.Kind {
		case TaskFerry:
			pts = append(pts,
				mutPoint{arm: "viperx", loc: "dd_pickup"},
				mutPoint{param: "qty", task: ti})
		case TaskHotplate:
			pts = append(pts,
				mutPoint{arm: "viperx", loc: "hp_place"},
				mutPoint{param: "temp", task: ti})
		case TaskPump:
			pts = append(pts, mutPoint{param: "vol", task: ti})
		case TaskPatrol:
			pts = append(pts, mutPoint{param: "pose", task: ti})
		}
	}
	return pts
}

// injectFault draws one fault. Delete targets guard steps (doors, caps,
// sleeps, stops) with high probability — the mutations the paper's bug
// suite shows matter — but every step is reachable, so the oracle earns
// its keep classifying benign deletions too.
func (g *Generator) injectFault(sc *Scenario, r *rng) {
	kind := FaultKind(1 + r.intn(3))
	switch kind {
	case FaultDelete:
		names := stepNames(sc)
		i := pickDeleteIdx(names, r)
		sc.Fault = Fault{Kind: FaultDelete, Step: i, StepName: names[i]}
	case FaultReorder:
		names := stepNames(sc)
		i := r.intn(len(names))
		j := r.intn(len(names))
		if j == i {
			j = (j + 1) % len(names)
		}
		sc.Fault = Fault{Kind: FaultReorder, Step: i, To: j, StepName: names[i], ToName: names[j]}
	case FaultMutate:
		pts := mutationPoints(sc)
		p := pts[r.intn(len(pts))]
		f := Fault{Kind: FaultMutate}
		switch {
		case p.loc != "":
			dz := -(0.03 + 0.01*float64(r.intn(8)))
			if r.float() < 0.25 {
				dz = -dz
			}
			f.Mut = Mutation{Arm: p.arm, Loc: p.loc, DZ: dz}
		case p.param == "pose":
			dz := -(0.14 + 0.04*float64(r.intn(5)))
			f.Mut = Mutation{Param: "pose", Task: p.task, Scale: dz}
			for pi := range sc.Tasks[p.task].Poses {
				sc.Tasks[p.task].Poses[pi].Z += dz
			}
		case p.param == "temp":
			scale := 1.5 + 0.5*float64(r.intn(5))
			f.Mut = Mutation{Param: "temp", Task: p.task, Scale: scale}
			sc.Tasks[p.task].TempC *= scale
		case p.param == "qty":
			scale := float64(2 + r.intn(3))
			f.Mut = Mutation{Param: "qty", Task: p.task, Scale: scale}
			sc.Tasks[p.task].QtyMg *= scale
		case p.param == "vol":
			scale := float64(2 + r.intn(3))
			f.Mut = Mutation{Param: "vol", Task: p.task, Scale: scale}
			sc.Tasks[p.task].VolML *= scale
		}
		sc.Fault = f
	}
}

func stepNames(sc *Scenario) []string {
	steps := sc.baseSteps()
	names := make([]string, len(steps))
	for i, st := range steps {
		names[i] = st.Name
	}
	return names
}

var guardSubstrings = []string{"door", "cap", "sleep", "stop", "clear", "close", "open"}

func isGuardStep(name string) bool {
	for _, s := range guardSubstrings {
		if strings.Contains(name, s) {
			return true
		}
	}
	return false
}

func pickDeleteIdx(names []string, r *rng) int {
	var guards []int
	for i, n := range names {
		if isGuardStep(n) {
			guards = append(guards, i)
		}
	}
	if len(guards) > 0 && r.float() < 0.7 {
		return guards[r.intn(len(guards))]
	}
	return r.intn(len(names))
}

// Fingerprints renders scenarios [0, n) one per line — the byte stream
// the determinism contract is stated over.
func (g *Generator) Fingerprints(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintln(&b, g.Scenario(i).Fingerprint())
	}
	return b.String()
}
