package campaign

import (
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/kin"
	"repro/internal/obs/recorder"
	"repro/internal/rules"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workflow"
)

// Options configures a campaign run.
type Options struct {
	// N is the number of scenarios (indices [0, N)).
	N int
	// Seed is the campaign master seed; everything derives from it.
	Seed uint64
	// Workers is the parallel worker count (0 = GOMAXPROCS).
	Workers int
	// DecksPerLab is the number of deck variants per lab config
	// (0 = DefaultDecksPerLab).
	DecksPerLab int
	// Naive disables the engine pool: every scenario pays full
	// construction (spec compile, rulebase, simulator + BVH, engine).
	// This is the calibration baseline the pooled speedup is measured
	// against, not a supported production mode.
	Naive bool
	// IncidentDir, when set, enables incident bundles: one per RABIT
	// alert and — the campaign's own contribution — one per missed
	// unsafe injection, so every oracle-confirmed miss leaves a
	// debuggable artifact.
	IncidentDir string
	// Progress, when set, receives live telemetry: scenario counts,
	// running detection/miss/false-alarm tallies, throughput, ETA, and
	// per-worker progress, published as rabit_campaign_* gauges and the
	// /campaign NDJSON stream. Nil runs silently.
	Progress *Progress
}

// KindStats aggregates scenario outcomes for one fault kind.
type KindStats struct {
	Scenarios int64 `json:"scenarios"`
	// Unsafe counts scenarios the unprotected oracle replay actually
	// damaged (any world damage event).
	Unsafe int64 `json:"unsafe"`
	// Detected / Missed split the unsafe population by whether the
	// protected run raised at least one alert.
	Detected int64 `json:"detected"`
	Missed   int64 `json:"missed"`
	// BenignAlerts counts faulted-but-oracle-safe scenarios that
	// alerted anyway (e.g. a hotplate setpoint above the rule threshold
	// but below the damage threshold). They are conservatism, not false
	// alarms — false alarms are measured on the clean population only.
	BenignAlerts int64 `json:"benign_alerts"`
}

func (k *KindStats) add(o KindStats) {
	k.Scenarios += o.Scenarios
	k.Unsafe += o.Unsafe
	k.Detected += o.Detected
	k.Missed += o.Missed
	k.BenignAlerts += o.BenignAlerts
}

// Summary is a campaign's aggregate result. Every field except WallNS
// and ScenariosPerSec is an order-independent integer sum, so summaries
// are identical at any worker count — Counts() renders exactly the
// invariant part.
type Summary struct {
	N       int    `json:"n"`
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers"`
	Naive   bool   `json:"naive"`

	// ByFault is indexed by FaultKind (0 = clean controls).
	ByFault [4]KindStats `json:"by_fault"`
	// FalseAlarms counts clean (unfaulted, oracle-safe) scenarios that
	// alerted.
	FalseAlarms int64 `json:"false_alarms"`
	// DamageMicros is total oracle damage cost in 1e-6 units — summed
	// as integers so the total is associative and worker-count
	// invariant.
	DamageMicros   int64 `json:"damage_micros"`
	IncidentsFiled int64 `json:"incidents_filed"`
	// OracleErrors counts oracle replays that ended on an environment
	// error; RunErrors counts protected replays that ended on a
	// non-alert error; SetupErrors counts scenarios skipped on
	// construction failure.
	OracleErrors int64 `json:"oracle_errors"`
	RunErrors    int64 `json:"run_errors"`
	SetupErrors  int64 `json:"setup_errors"`

	WallNS          int64   `json:"wall_ns"`
	ScenariosPerSec float64 `json:"scenarios_per_sec"`
}

// Totals sums KindStats across fault kinds.
func (s *Summary) Totals() KindStats {
	var t KindStats
	for i := range s.ByFault {
		t.add(s.ByFault[i])
	}
	return t
}

// Counts renders the worker-count-invariant part of the summary — the
// byte string the determinism property tests compare.
func (s *Summary) Counts() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d seed=%016x naive=%v\n", s.N, s.Seed, s.Naive)
	for k, ks := range s.ByFault {
		fmt.Fprintf(&b, "%-8s scenarios=%d unsafe=%d detected=%d missed=%d benign_alerts=%d\n",
			FaultKind(k), ks.Scenarios, ks.Unsafe, ks.Detected, ks.Missed, ks.BenignAlerts)
	}
	fmt.Fprintf(&b, "false_alarms=%d damage_micros=%d incidents_filed=%d oracle_errors=%d run_errors=%d setup_errors=%d\n",
		s.FalseAlarms, s.DamageMicros, s.IncidentsFiled, s.OracleErrors, s.RunErrors, s.SetupErrors)
	return b.String()
}

// accum is one worker's private accumulator. Workers never share one —
// each merges into the summary after the last scenario, so the hot loop
// is free of shared-counter contention.
type accum struct {
	byFault        [4]KindStats
	falseAlarms    int64
	damageMicros   int64
	incidentsFiled int64
	oracleErrors   int64
	runErrors      int64
	setupErrors    int64
}

// chunkSize is the work-stealing grain: big enough to amortize the
// atomic claim, small enough that a straggler chunk can't idle the other
// workers at the tail.
const chunkSize = 8

// Run executes the campaign. Scenario outcomes are pure functions of
// (seed, index), damage accumulates in integer micro-units, and workers
// claim disjoint index chunks off one atomic counter — so the returned
// summary (minus wall-clock fields) is identical at any worker count.
func Run(o Options) (*Summary, error) {
	if o.N <= 0 {
		return nil, errors.New("campaign: N must be positive")
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	gen, err := NewGenerator(o.Seed, o.DecksPerLab)
	if err != nil {
		return nil, err
	}
	if o.IncidentDir != "" {
		if err := os.MkdirAll(o.IncidentDir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: incident dir: %w", err)
		}
	}
	// Read-only after construction; safe to share across workers.
	runtimes := make(map[*Deck]*deckRuntime)
	for _, d := range gen.Decks() {
		runtimes[d] = newDeckRuntime(d, o.IncidentDir)
	}

	var next atomic.Int64
	accums := make([]*accum, o.Workers)
	var wg sync.WaitGroup
	o.Progress.begin(o.N, o.Workers)
	start := time.Now()
	for w := 0; w < o.Workers; w++ {
		acc := &accum{}
		accums[w] = acc
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				base := next.Add(chunkSize) - chunkSize
				if base >= int64(o.N) {
					return
				}
				end := min(base+chunkSize, int64(o.N))
				for i := base; i < end; i++ {
					sc := gen.Scenario(int(i))
					runOne(sc, runtimes[sc.Deck], o, acc, worker)
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	o.Progress.finish()

	s := &Summary{N: o.N, Seed: o.Seed, Workers: o.Workers, Naive: o.Naive, WallNS: wall.Nanoseconds()}
	for _, acc := range accums {
		for k := range s.ByFault {
			s.ByFault[k].add(acc.byFault[k])
		}
		s.FalseAlarms += acc.falseAlarms
		s.DamageMicros += acc.damageMicros
		s.IncidentsFiled += acc.incidentsFiled
		s.OracleErrors += acc.oracleErrors
		s.RunErrors += acc.runErrors
		s.SetupErrors += acc.setupErrors
	}
	if secs := wall.Seconds(); secs > 0 {
		s.ScenariosPerSec = float64(o.N) / secs
	}
	return s, nil
}

// runOne replays one scenario twice — unprotected against the
// ground-truth world (the oracle) and through the full RABIT stack — and
// classifies the outcome.
func runOne(sc *Scenario, rt *deckRuntime, o Options, acc *accum, worker int) {
	// The oracle replay shares the deck's world-plan cache in pooled mode;
	// the naive baseline re-solves from scratch, as a one-shot harness
	// would.
	var plans *kin.PlanCache
	if !o.Naive {
		plans = rt.worldPlans
	}
	oracleUnsafe, micros, detail, oracleErr := runOracle(sc, plans)

	var (
		alerted bool
		runErr  error
		filed   int64
		err     error
	)
	if o.Naive {
		alerted, runErr, filed, err = runNaive(sc, o.IncidentDir, oracleUnsafe, detail)
	} else {
		alerted, runErr, filed, err = rt.runPooled(sc, oracleUnsafe, detail)
	}
	if err != nil {
		acc.setupErrors++
		o.Progress.scenarioDone(worker, false, false, false)
		return
	}
	o.Progress.scenarioDone(worker,
		oracleUnsafe && alerted,
		oracleUnsafe && !alerted,
		!oracleUnsafe && alerted && sc.Fault.Kind == FaultNone)

	ks := &acc.byFault[sc.Fault.Kind]
	ks.Scenarios++
	acc.damageMicros += micros
	if oracleErr != nil {
		acc.oracleErrors++
	}
	if runErr != nil {
		acc.runErrors++
	}
	switch {
	case oracleUnsafe && alerted:
		ks.Unsafe++
		ks.Detected++
	case oracleUnsafe:
		ks.Unsafe++
		ks.Missed++
	case alerted && sc.Fault.Kind == FaultNone:
		acc.falseAlarms++
	case alerted:
		ks.BenignAlerts++
	}
	acc.incidentsFiled += filed
}

// campaignWorld applies the campaign motion regime to a freshly built
// environment: exact motion (no repeatability noise), so every replay of
// a scenario — oracle, protected, pooled, naive, any worker — commands
// byte-identical moves, and an optional shared plan cache (pooled mode)
// that memoizes those moves across the deck's scenarios.
func campaignWorld(e *env.Env, plans *kin.PlanCache) {
	e.World().SetExactMotion(true)
	if plans != nil {
		e.World().SetMotionPlanCache(plans)
	}
}

// runOracle replays the scenario with no checker: the interceptor passes
// every command straight to the ground-truth world, and whatever damage
// events accumulate are the scenario's objective verdict.
func runOracle(sc *Scenario, plans *kin.PlanCache) (unsafe bool, micros int64, detail string, err error) {
	e, berr := env.Build(sc.Deck.Compiled, env.StageTestbed, int64(sc.Seed))
	if berr != nil {
		return false, 0, "", berr
	}
	campaignWorld(e, plans)
	ic := trace.NewInterceptor(nil, e)
	ses := workflow.NewSession(ic, sc.Deck.Compiled)
	ses.Measure = e.MeasureSolubility
	sc.ApplyLocs(ses)
	err = workflow.RunSteps(ses, sc.Steps())
	evs := e.World().Events()
	if len(evs) == 0 {
		return false, 0, "", err
	}
	micros = int64(math.Round(e.World().DamageCost() * 1e6))
	detail = fmt.Sprintf("%s; oracle: %d damage events, first: %s", sc.Fingerprint(), len(evs), evs[0].Description)
	return true, micros, detail, err
}

// finishProtected is the classification tail shared by the pooled and
// naive paths: read the alert verdict and, when the oracle says unsafe
// but the checker stayed silent, freeze the scenario's command window
// into a missed-injection bundle.
func finishProtected(eng *core.Engine, rec *recorder.Recorder, e *env.Env,
	runErr error, oracleUnsafe bool, detail string) (alerted bool, rErr error, filed int64) {
	alerted = len(eng.Alerts()) > 0
	var al *core.Alert
	if runErr != nil && !errors.As(runErr, &al) {
		rErr = runErr
	}
	if oracleUnsafe && !alerted && rec.Dir() != "" {
		rec.FileSnapshot("missed_unsafe_injection", detail, e.Now().Nanoseconds())
		filed = 1
	}
	return alerted, rErr, filed
}

// runPooled replays the scenario through a pooled stack: fresh world,
// reset simulator mirror, re-tagged recorder, rebound engine — and
// everything expensive reused.
func (dr *deckRuntime) runPooled(sc *Scenario, oracleUnsafe bool, detail string) (alerted bool, runErr error, filed int64, err error) {
	st, err := dr.get()
	if err != nil {
		return false, nil, 0, err
	}
	defer dr.put(st)
	e, err := env.Build(dr.deck.Compiled, env.StageTestbed, int64(sc.Seed))
	if err != nil {
		return false, nil, 0, err
	}
	campaignWorld(e, dr.worldPlans)
	st.sm.Reset()
	st.rec.Reset(fmt.Sprintf("s%07d", sc.Index))
	st.eng.Rebind(e)
	ic := trace.NewInterceptor(st.eng, e)
	ic.SetRecorder(st.rec)
	ses := workflow.NewSession(ic, dr.deck.Compiled)
	ses.Measure = e.MeasureSolubility
	sc.ApplyLocs(ses)
	stepErr := workflow.RunSteps(ses, sc.Steps())
	alerted, runErr, filed = finishProtected(st.eng, st.rec, e, stepErr, oracleUnsafe, detail)
	return alerted, runErr, filed, nil
}

// runNaive pays full per-scenario construction — spec compile, rulebase
// generation, simulator (and its deck BVH), engine — exactly as a
// one-shot rabit.New would. It exists to calibrate what the pool saves.
func runNaive(sc *Scenario, incidentDir string, oracleUnsafe bool, detail string) (alerted bool, runErr error, filed int64, err error) {
	lab, err := config.Compile(sc.Deck.Spec)
	if err != nil {
		return false, nil, 0, err
	}
	custom, err := lab.CustomRules()
	if err != nil {
		return false, nil, 0, err
	}
	rb, err := rules.NewRulebase(lab, rules.Config{
		Generation: rules.GenModified,
		Multiplex:  rules.MultiplexTime,
	}, custom...)
	if err != nil {
		return false, nil, 0, err
	}
	e, err := env.Build(lab, env.StageTestbed, int64(sc.Seed))
	if err != nil {
		return false, nil, 0, err
	}
	campaignWorld(e, nil)
	// The private plan cache runs warm-start off so the naive mode's IK
	// lands on exactly the branches the pooled mode's shared caches
	// replay — the modes must agree scenario-by-scenario, not just in
	// aggregate.
	sm, err := sim.New(lab,
		sim.WithHeldObjectAware(true),
		sim.WithMotionCache(true),
		sim.WithSharedPlanCache(exactPlanCache()))
	if err != nil {
		return false, nil, 0, err
	}
	rec := recorder.New(recorder.Options{
		Depth: stackRecorderDepth,
		Dir:   incidentDir,
		Tag:   fmt.Sprintf("s%07d", sc.Index),
	})
	eng := core.New(rb, e,
		core.WithInitialModel(lab.InitialModelState()),
		core.WithSimulator(sm),
		core.WithRecorder(rec),
		core.WithSpeculation(false))
	eng.Start()
	ic := trace.NewInterceptor(eng, e)
	ic.SetRecorder(rec)
	ses := workflow.NewSession(ic, lab)
	ses.Measure = e.MeasureSolubility
	sc.ApplyLocs(ses)
	stepErr := workflow.RunSteps(ses, sc.Steps())
	alerted, runErr, filed = finishProtected(eng, rec, e, stepErr, oracleUnsafe, detail)
	return alerted, runErr, filed, nil
}
