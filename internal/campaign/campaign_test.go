package campaign

import (
	"strings"
	"sync"
	"testing"
)

// testGen builds one generator (3 labs x 1 variant) shared by the
// hand-picked scenario tests; deck construction pays IK reachability
// sweeps, so tests share it rather than rebuilding per case.
var (
	testGenOnce sync.Once
	testGenVal  *Generator
	testGenErr  error
)

func testGen(t *testing.T) *Generator {
	t.Helper()
	testGenOnce.Do(func() {
		testGenVal, testGenErr = NewGenerator(1, 1)
	})
	if testGenErr != nil {
		t.Fatalf("generator: %v", testGenErr)
	}
	return testGenVal
}

// testbedScenario builds a hand-picked testbed scenario on the pristine
// deck variant.
func testbedScenario(t *testing.T, tasks []Task) *Scenario {
	t.Helper()
	return &Scenario{Index: 0, Seed: 0xbeef, Deck: testGen(t).labs[0][0], Tasks: tasks}
}

// stepIndex finds a step by name in the scenario's base script.
func stepIndex(t *testing.T, sc *Scenario, name string) int {
	t.Helper()
	for i, n := range stepNames(sc) {
		if n == name {
			return i
		}
	}
	t.Fatalf("no step %q in %v", name, stepNames(sc))
	return -1
}

func ferryTask() []Task {
	return []Task{{Kind: TaskFerry, Vial: "vial_1", Slot: "grid_NW", QtyMg: 3}}
}

func hotplateTask(temp float64) []Task {
	return []Task{{Kind: TaskHotplate, Vial: "vial_2", Slot: "grid_SW", TempC: temp}}
}

// oracleVerdict runs the unprotected oracle replay and returns whether
// the world recorded damage.
func oracleVerdict(t *testing.T, sc *Scenario) bool {
	t.Helper()
	unsafe, _, _, _ := runOracle(sc, nil)
	return unsafe
}

// TestOracleDeleteClassification: removing the door-open before the arm
// reaches into the dosing device is physically unsafe (the arm smashes
// the closed door); removing the dosing action itself moves no hardware.
func TestOracleDeleteClassification(t *testing.T) {
	unsafe := testbedScenario(t, ferryTask())
	i := stepIndex(t, unsafe, "t0-open-door")
	unsafe.Fault = Fault{Kind: FaultDelete, Step: i, StepName: "t0-open-door"}
	if !oracleVerdict(t, unsafe) {
		t.Errorf("deleting t0-open-door: oracle says safe, want unsafe")
	}

	safe := testbedScenario(t, ferryTask())
	i = stepIndex(t, safe, "t0-dose")
	safe.Fault = Fault{Kind: FaultDelete, Step: i, StepName: "t0-dose"}
	if oracleVerdict(t, safe) {
		t.Errorf("deleting t0-dose: oracle says unsafe, want safe")
	}
}

// TestOracleReorderClassification: deferring the door-open to the end of
// the script is as unsafe as deleting it; swapping the two argument-free
// prologue device ops (decap before door-open) changes nothing physical.
func TestOracleReorderClassification(t *testing.T) {
	unsafe := testbedScenario(t, ferryTask())
	i := stepIndex(t, unsafe, "t0-open-door")
	last := len(stepNames(unsafe)) - 1
	unsafe.Fault = Fault{Kind: FaultReorder, Step: i, To: last,
		StepName: "t0-open-door", ToName: stepNames(unsafe)[last]}
	if !oracleVerdict(t, unsafe) {
		t.Errorf("deferring t0-open-door: oracle says safe, want unsafe")
	}

	safe := testbedScenario(t, ferryTask())
	i = stepIndex(t, safe, "t0-decap")
	safe.Fault = Fault{Kind: FaultReorder, Step: i, To: i - 1,
		StepName: "t0-decap", ToName: stepNames(safe)[i-1]}
	if oracleVerdict(t, safe) {
		t.Errorf("swapping decap before door-open: oracle says unsafe, want safe")
	}
}

// TestOracleMutateClassification: a 400C setpoint clears the firmware
// cap (408C) but exceeds the plate's physical rating (340C), so running
// it destroys the device; 90C stays below both the rule threshold and
// the rating.
func TestOracleMutateClassification(t *testing.T) {
	unsafe := testbedScenario(t, hotplateTask(400))
	unsafe.Fault = Fault{Kind: FaultMutate, Mut: Mutation{Param: "temp", Task: 0, Scale: 5}}
	if !oracleVerdict(t, unsafe) {
		t.Errorf("hotplate at 450C: oracle says safe, want unsafe")
	}

	safe := testbedScenario(t, hotplateTask(90))
	safe.Fault = Fault{Kind: FaultMutate, Mut: Mutation{Param: "temp", Task: 0, Scale: 1.5}}
	if oracleVerdict(t, safe) {
		t.Errorf("hotplate at 90C: oracle says unsafe, want safe")
	}

	// The Bug D idiom: the script's location table is edited so the place
	// descends 5cm into the hotplate body.
	crash := testbedScenario(t, hotplateTask(80))
	crash.Fault = Fault{Kind: FaultMutate, Mut: Mutation{Arm: "viperx", Loc: "hp_place", DZ: -0.05}}
	if !oracleVerdict(t, crash) {
		t.Errorf("hp_place 5cm low: oracle says safe, want unsafe")
	}
}

// TestPooledStackReuseNoBleed reuses one pooled stack across scenarios:
// an alerting scenario (hotplate setpoint over the rule threshold)
// followed by a clean one. Any state bleeding across the reset path —
// engine alerts, simulator mirror joints, stale verdicts — would turn
// the clean scenario's verdict.
func TestPooledStackReuseNoBleed(t *testing.T) {
	deck := testGen(t).labs[0][0]
	rt := newDeckRuntime(deck, "")

	hot := &Scenario{Index: 1, Seed: 0x11, Deck: deck, Tasks: hotplateTask(450),
		Fault: Fault{Kind: FaultMutate, Mut: Mutation{Param: "temp", Task: 0, Scale: 5}}}
	alerted, _, _, err := rt.runPooled(hot, false, "")
	if err != nil {
		t.Fatalf("hot scenario: %v", err)
	}
	if !alerted {
		t.Fatalf("hotplate at 450C did not alert")
	}

	clean := &Scenario{Index: 2, Seed: 0x22, Deck: deck, Tasks: hotplateTask(80)}
	alerted, runErr, _, err := rt.runPooled(clean, false, "")
	if err != nil {
		t.Fatalf("clean scenario: %v", err)
	}
	if alerted {
		t.Errorf("clean scenario alerted on a reused stack: alert state bled through reset")
	}
	if runErr != nil {
		t.Errorf("clean scenario on reused stack errored: %v", runErr)
	}
}

// TestScenarioStreamDeterminism: the scenario stream is a pure function
// of the master seed — byte-identical across generator instances, and
// different seeds diverge.
func TestScenarioStreamDeterminism(t *testing.T) {
	a, err := NewGenerator(42, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(42, 2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	fa, fb := a.Fingerprints(n), b.Fingerprints(n)
	if fa != fb {
		t.Fatalf("same seed produced different scenario streams")
	}
	if lines := strings.Count(fa, "\n"); lines != n {
		t.Fatalf("fingerprint stream has %d lines, want %d", lines, n)
	}
	c, err := NewGenerator(43, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprints(n) == fa {
		t.Fatalf("different seeds produced identical scenario streams")
	}
}

// TestCampaignWorkerInvariance: the summary's invariant section is
// byte-identical at 1 and 8 workers — scenario outcomes are pure
// functions of (seed, index) and aggregation is order-free.
func TestCampaignWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var counts []string
	for _, w := range []int{1, 8} {
		s, err := Run(Options{N: 96, Seed: 7, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, s.Counts())
	}
	if counts[0] != counts[1] {
		t.Errorf("summary varies with worker count:\nworkers=1:\n%s\nworkers=8:\n%s", counts[0], counts[1])
	}
}

// TestPooledNaiveEquivalence: the pooled runner must be a pure
// optimization — same verdicts, same summary — of the naive
// build-everything-per-scenario baseline. This is the cross-scenario
// bleed regression: any pooled state leaking between scenarios shows up
// as a divergence from the naive run.
func TestPooledNaiveEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pooled, err := Run(Options{N: 60, Seed: 11, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Run(Options{N: 60, Seed: 11, Workers: 4, Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	p := strings.Replace(pooled.Counts(), "naive=false", "naive=?", 1)
	n := strings.Replace(naive.Counts(), "naive=true", "naive=?", 1)
	if p != n {
		t.Errorf("pooled and naive runs disagree:\npooled:\n%s\nnaive:\n%s", pooled.Counts(), naive.Counts())
	}
}

// TestCampaignRaceSmall is the shape the CI -race job runs: a small
// parallel campaign with more workers than scenarios per chunk, so
// stealing, pool reuse, and the shared plan caches all interleave.
func TestCampaignRaceSmall(t *testing.T) {
	s, err := Run(Options{N: 24, Seed: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Totals().Scenarios; got != 24 {
		t.Errorf("ran %d scenarios, want 24", got)
	}
}
