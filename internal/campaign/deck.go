package campaign

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/geom"
	"repro/internal/kin"
	"repro/internal/rules"
)

// Deck is one generated deck variant: a lab spec with devices (and the
// locations they own) displaced within the deck plane, compiled once and
// shared read-only by every scenario that lands on it. The fingerprint
// is the pooled runner's reuse key — scenarios with equal fingerprints
// share engines, rulebases, simulators, and the deck spatial index.
type Deck struct {
	LabName string
	Variant int
	// Spec is the jittered spec — the naive runner compiles it per
	// scenario, which is exactly the cost the pooled runner amortizes.
	Spec *config.LabSpec
	// Compiled and Rulebase are the precompiled shared immutables the
	// pooled path reuses.
	Compiled *config.Lab
	Rulebase *rules.Rulebase
	// Profiles are the arms' kinematic profiles, solved once per deck;
	// pooled simulator stacks share them instead of re-running
	// NewProfile's canonical-pose IK per stack.
	Profiles map[string]*kin.Profile
	// Fingerprint renders the variant's device placement, so equal decks
	// are recognizably equal across runs and in reports.
	Fingerprint string
}

// Deck jitter bounds: devices move in the deck plane on a 5 mm grid
// within ±15 mm. Small enough that canonical workflows (safe heights,
// approach points) stay collision-free; large enough that trajectories,
// IK solutions, and BVH layouts genuinely differ per variant.
const (
	jitterQuantum = 0.005
	jitterSteps   = 3 // offsets in {-3..3} * quantum
	jitterMargin  = 0.01
)

// cloneSpec deep-copies a lab spec through its JSON form — the spec is
// by construction a pure JSON document, so the round-trip is lossless.
func cloneSpec(spec *config.LabSpec) (*config.LabSpec, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("campaign: clone spec: %w", err)
	}
	out := &config.LabSpec{}
	if err := json.Unmarshal(b, out); err != nil {
		return nil, fmt.Errorf("campaign: clone spec: %w", err)
	}
	return out, nil
}

// xyOverlap reports whether two boxes overlap in the deck plane with the
// given margin.
func xyOverlap(a, b config.BoxSpec, margin float64) bool {
	return a.Min.X-margin < b.Max.X && a.Max.X+margin > b.Min.X &&
		a.Min.Y-margin < b.Max.Y && a.Max.Y+margin > b.Min.Y
}

// armSolver wraps one arm's kinematic chain for reachability checks.
type armSolver struct {
	base  geom.Vec3
	chain *kin.Chain
	home  []float64
}

func (s armSolver) reaches(world geom.Vec3) bool {
	_, err := s.chain.Solve(world, s.home, kin.DefaultIKOptions())
	return err == nil
}

// deckProfiles solves one kinematic profile per arm. Arms are never
// jittered, so the profiles hold for every variant of a lab and for the
// compiled deck the pooled stacks run against.
func deckProfiles(spec *config.LabSpec) (map[string]*kin.Profile, error) {
	out := make(map[string]*kin.Profile, len(spec.Arms))
	for _, a := range spec.Arms {
		m, err := kin.ParseModel(a.Model)
		if err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", a.ID, err)
		}
		p, err := kin.NewProfile(m, geom.PoseAt(a.Base.V3()))
		if err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", a.ID, err)
		}
		out[a.ID] = p
	}
	return out, nil
}

// specSolvers wraps the deck profiles as IK solvers keyed by arm ID.
func specSolvers(spec *config.LabSpec, profiles map[string]*kin.Profile) map[string]armSolver {
	out := make(map[string]armSolver, len(spec.Arms))
	for _, a := range spec.Arms {
		p := profiles[a.ID]
		out[a.ID] = armSolver{base: a.Base.V3(), chain: p.Chain, home: p.Home}
	}
	return out
}

// reachPreserved reports whether every location the device owns that was
// IK-solvable at its original position stays solvable after the (dx, dy)
// displacement. Canonical workflows park at safe points barely inside an
// arm's envelope (the Hein deck's ts_safe solves with under a millimetre
// to spare), so even a centimetre of jitter can strand a step.
func reachPreserved(spec *config.LabSpec, deviceID string, dx, dy float64, solvers map[string]armSolver) bool {
	for li := range spec.Locations {
		l := &spec.Locations[li]
		if l.Owner != deviceID {
			continue
		}
		orig := l.DeckPos.V3()
		moved := orig.Add(geom.V(dx, dy, 0))
		for _, s := range solvers {
			if s.reaches(orig) && !s.reaches(moved) {
				return false
			}
		}
		for arm, p := range l.PerArm {
			s, ok := solvers[arm]
			if !ok {
				continue
			}
			// Per-arm overrides are in the owning arm's frame.
			orig := p.V3().Add(s.base)
			if s.reaches(orig) && !s.reaches(orig.Add(geom.V(dx, dy, 0))) {
				return false
			}
		}
	}
	return true
}

// jitterSpec displaces every non-sensor device (body, interior, and all
// locations it owns, including per-arm calibration overrides) by a
// quantized random offset, rejecting placements that would bring device
// footprints within jitterMargin of each other or push a reachable owned
// location out of any arm's IK envelope. A device that cannot be placed
// after a few tries keeps its original position — a valid, just less
// diverse, deck.
func jitterSpec(spec *config.LabSpec, r *rng, solvers map[string]armSolver) {
	for di := range spec.Devices {
		d := &spec.Devices[di]
		if d.Type == "sensor" {
			continue
		}
		for try := 0; try < 8; try++ {
			dx := float64(r.intn(2*jitterSteps+1)-jitterSteps) * jitterQuantum
			dy := float64(r.intn(2*jitterSteps+1)-jitterSteps) * jitterQuantum
			moved := d.Cuboid
			moved.Min.X += dx
			moved.Max.X += dx
			moved.Min.Y += dy
			moved.Max.Y += dy
			ok := true
			for oi := range spec.Devices {
				if oi == di {
					continue
				}
				if xyOverlap(moved, spec.Devices[oi].Cuboid, jitterMargin) &&
					!xyOverlap(d.Cuboid, spec.Devices[oi].Cuboid, jitterMargin) {
					// Only reject overlaps the jitter introduced: some decks
					// legitimately nest footprints (a rack beside its sensor).
					ok = false
					break
				}
			}
			if !ok || !reachPreserved(spec, d.ID, dx, dy, solvers) {
				continue
			}
			d.Cuboid = moved
			if d.Interior != nil {
				d.Interior.Min.X += dx
				d.Interior.Max.X += dx
				d.Interior.Min.Y += dy
				d.Interior.Max.Y += dy
			}
			for li := range spec.Locations {
				l := &spec.Locations[li]
				if l.Owner != d.ID {
					continue
				}
				l.DeckPos.X += dx
				l.DeckPos.Y += dy
				for arm, p := range l.PerArm {
					p.X += dx
					p.Y += dy
					l.PerArm[arm] = p
				}
			}
			break
		}
	}
}

// campaignizeSpec adapts the paper's testbed for the campaign grammar.
// Two adjustments, applied to every variant (including the pristine
// variant 0) so clean scenarios are genuinely safe AND legal:
//
//   - The grid vials carry 2 mL of liquid: the hotplate task heats one of
//     them, and an action device refuses empty containers (general #6).
//   - An hp_approach waypoint appears short of the hotplate footprint,
//     high enough that a held vial clears the plate body: the direct
//     grid→hp_safe diagonal enters the footprint while still climbing,
//     and deck jitter can close that margin to a collision. Owned by the
//     hotplate, so jitter moves it with the device.
func campaignizeSpec(spec *config.LabSpec) {
	if spec.Lab != "hein-testbed" {
		return
	}
	for i := range spec.Containers {
		c := &spec.Containers[i]
		if c.ID == "vial_1" || c.ID == "vial_2" {
			c.InitialLiquidML = 2
		}
	}
	spec.Locations = append(spec.Locations, config.LocationSpec{
		Name: "hp_approach", Owner: "hotplate",
		DeckPos: config.Vec{X: 0.44, Y: 0.34, Z: 0.40},
		Meta:    "campaign: high entry point clear of the hotplate body",
	})
}

// deckFingerprint renders the variant's placement compactly and stably.
func deckFingerprint(spec *config.LabSpec, variant int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/v%d", spec.Lab, variant)
	for _, d := range spec.Devices {
		if d.Type == "sensor" {
			continue
		}
		fmt.Fprintf(&b, " %s@(%.3f,%.3f)", d.ID, d.Cuboid.Min.X, d.Cuboid.Min.Y)
	}
	return b.String()
}

// buildDeck compiles one variant. Variant 0 is the pristine lab; higher
// variants jitter with a seed derived from (master, lab name, variant),
// so the variant set is itself a pure function of the campaign seed.
func buildDeck(base *config.LabSpec, master uint64, variant int) (*Deck, error) {
	spec, err := cloneSpec(base)
	if err != nil {
		return nil, err
	}
	campaignizeSpec(spec)
	profiles, err := deckProfiles(spec)
	if err != nil {
		return nil, err
	}
	if variant > 0 {
		seed := mix64(master ^ mix64(uint64(variant)))
		for _, c := range base.Lab {
			seed = mix64(seed ^ uint64(c))
		}
		jitterSpec(spec, newRNG(seed), specSolvers(spec, profiles))
	}
	lab, err := config.Compile(spec)
	if err != nil {
		return nil, fmt.Errorf("campaign: compile %s variant %d: %w", base.Lab, variant, err)
	}
	custom, err := lab.CustomRules()
	if err != nil {
		return nil, fmt.Errorf("campaign: %s custom rules: %w", base.Lab, err)
	}
	rb, err := rules.NewRulebase(lab, rules.Config{
		Generation: rules.GenModified,
		Multiplex:  rules.MultiplexTime,
	}, custom...)
	if err != nil {
		return nil, fmt.Errorf("campaign: %s rulebase: %w", base.Lab, err)
	}
	return &Deck{
		LabName:     spec.Lab,
		Variant:     variant,
		Spec:        spec,
		Compiled:    lab,
		Rulebase:    rb,
		Profiles:    profiles,
		Fingerprint: deckFingerprint(spec, variant),
	}, nil
}
