package campaign

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Live campaign telemetry (ISSUE 10). A fault-injection campaign runs
// thousands of scenarios for minutes; without telemetry the only signal
// is the final summary. Progress publishes the campaign's live state
// two ways from the same atomics: the obs gauge set (scraped on
// /metrics and /metrics/prom as rabit_campaign_* series) and an NDJSON
// stream (mounted on /campaign via obs.RegisterHTTPHandler) that emits
// one snapshot per interval until the campaign completes — `curl -N
// localhost:6060/campaign` is a live progress bar.

// Progress tracks a running campaign. Build with NewProgress, hand it
// to Run via Options.Progress. All methods are nil-safe, so the runner
// updates it unconditionally.
type Progress struct {
	total   atomic.Int64
	done    atomic.Int64
	detect  atomic.Int64
	missed  atomic.Int64
	falseA  atomic.Int64
	running atomic.Bool
	startNS atomic.Int64
	wallNS  atomic.Int64 // latched at finish

	perWorker []atomic.Int64

	gTotal, gDone, gDetected, gMissed, gFalse *obs.Gauge
	gRate, gETA                               *obs.Gauge
	famWorker                                 *obs.Family
	workerGauges                              []*obs.Gauge
}

// NewProgress builds a tracker publishing into reg's campaign gauges
// (nil reg keeps the tracker NDJSON-only).
func NewProgress(reg *obs.Registry) *Progress {
	return &Progress{
		gTotal:    reg.Gauge(obs.GaugeCampaignTotal),
		gDone:     reg.Gauge(obs.GaugeCampaignDone),
		gDetected: reg.Gauge(obs.GaugeCampaignDetected),
		gMissed:   reg.Gauge(obs.GaugeCampaignMissed),
		gFalse:    reg.Gauge(obs.GaugeCampaignFalseAlarms),
		gRate:     reg.Gauge(obs.GaugeCampaignScenPerSecMilli),
		gETA:      reg.Gauge(obs.GaugeCampaignETASeconds),
		famWorker: reg.GaugeFamily(obs.FamilyCampaignWorkerDone, obs.LabelWorker),
	}
}

// begin arms the tracker for a run of total scenarios across workers.
func (p *Progress) begin(total, workers int) {
	if p == nil {
		return
	}
	p.total.Store(int64(total))
	p.done.Store(0)
	p.detect.Store(0)
	p.missed.Store(0)
	p.falseA.Store(0)
	p.wallNS.Store(0)
	p.startNS.Store(time.Now().UnixNano())
	p.perWorker = make([]atomic.Int64, workers)
	p.workerGauges = make([]*obs.Gauge, workers)
	for w := range p.workerGauges {
		p.workerGauges[w] = p.famWorker.Gauge(strconv.Itoa(w))
		p.workerGauges[w].Set(0)
	}
	p.gTotal.Set(int64(total))
	p.gDone.Set(0)
	p.gDetected.Set(0)
	p.gMissed.Set(0)
	p.gFalse.Set(0)
	p.gRate.Set(0)
	p.gETA.Set(0)
	p.running.Store(true)
}

// scenarioDone records one finished scenario's classification and
// refreshes the derived throughput and ETA gauges. One clock read per
// scenario — noise against a scenario's multi-ms replay cost.
func (p *Progress) scenarioDone(worker int, detected, missed, falseAlarm bool) {
	if p == nil {
		return
	}
	done := p.done.Add(1)
	p.gDone.Set(done)
	if worker >= 0 && worker < len(p.perWorker) {
		n := p.perWorker[worker].Add(1)
		p.workerGauges[worker].Set(n)
	}
	if detected {
		p.gDetected.Set(p.detect.Add(1))
	}
	if missed {
		p.gMissed.Set(p.missed.Add(1))
	}
	if falseAlarm {
		p.gFalse.Set(p.falseA.Add(1))
	}
	elapsed := time.Duration(time.Now().UnixNano() - p.startNS.Load())
	if secs := elapsed.Seconds(); secs > 0 {
		rate := float64(done) / secs
		p.gRate.Set(int64(rate * 1000))
		if remaining := p.total.Load() - done; remaining >= 0 && rate > 0 {
			p.gETA.Set(int64(float64(remaining) / rate))
		}
	}
}

// finish latches the wall clock and marks the run complete.
func (p *Progress) finish() {
	if p == nil {
		return
	}
	p.wallNS.Store(time.Now().UnixNano() - p.startNS.Load())
	p.gETA.Set(0)
	p.running.Store(false)
}

// ProgressSnapshot is one NDJSON line of /campaign.
type ProgressSnapshot struct {
	Running        bool    `json:"running"`
	Total          int64   `json:"total"`
	Done           int64   `json:"done"`
	Detected       int64   `json:"detected"`
	Missed         int64   `json:"missed"`
	FalseAlarms    int64   `json:"false_alarms"`
	ScenPerSec     float64 `json:"scen_per_sec"`
	ETASeconds     float64 `json:"eta_seconds"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Workers        []int64 `json:"workers,omitempty"`
}

// Snapshot captures the tracker's current state. Nil-safe.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	s := ProgressSnapshot{
		Running:     p.running.Load(),
		Total:       p.total.Load(),
		Done:        p.done.Load(),
		Detected:    p.detect.Load(),
		Missed:      p.missed.Load(),
		FalseAlarms: p.falseA.Load(),
	}
	var elapsed time.Duration
	if s.Running {
		elapsed = time.Duration(time.Now().UnixNano() - p.startNS.Load())
	} else {
		elapsed = time.Duration(p.wallNS.Load())
	}
	s.ElapsedSeconds = elapsed.Seconds()
	if s.ElapsedSeconds > 0 {
		s.ScenPerSec = float64(s.Done) / s.ElapsedSeconds
		if s.Running && s.ScenPerSec > 0 {
			s.ETASeconds = float64(s.Total-s.Done) / s.ScenPerSec
		}
	}
	s.Workers = make([]int64, len(p.perWorker))
	for i := range p.perWorker {
		s.Workers[i] = p.perWorker[i].Load()
	}
	return s
}

// DefaultStreamInterval is how often ServeHTTP emits a snapshot line.
const DefaultStreamInterval = 500 * time.Millisecond

// ServeHTTP streams progress as NDJSON: one snapshot immediately, then
// one per interval, ending with the final (running=false) snapshot or
// when the client goes away. Mount it with
// obs.RegisterHTTPHandler("/campaign", p).
func (p *Progress) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	fl, _ := w.(http.Flusher)
	interval := DefaultStreamInterval
	if iv := r.URL.Query().Get("interval_ms"); iv != "" {
		if ms, err := strconv.Atoi(iv); err == nil && ms > 0 {
			interval = time.Duration(ms) * time.Millisecond
		}
	}
	for {
		snap := p.Snapshot()
		if err := enc.Encode(snap); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
		if !snap.Running {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(interval):
		}
	}
}
