package gateway

import (
	"encoding/json"

	"repro/internal/action"
	"repro/internal/core"
)

// The wire format of the gateway API. Commands travel as
// action.Command's own JSON encoding — the gateway adds no translation
// layer between scripts and the engine — and command batches stream
// back as NDJSON, one CommandResult line per command, flushed as each
// verdict lands so a long paced batch reports progress live.

// CreateSessionRequest opens a session on a lab tenant: a named lab
// ("testbed", "hein", "berlinguette") or an inline lab-spec document
// (tenant-keyed by the spec's lab name).
type CreateSessionRequest struct {
	Lab  string          `json:"lab,omitempty"`
	Spec json.RawMessage `json:"spec,omitempty"`
}

// SessionInfo describes a session (create and attach responses).
type SessionInfo struct {
	SessionID string `json:"session_id"`
	Lab       string `json:"lab"`
	Commands  int    `json:"commands"`
}

// CommandBatch is the body of a commands POST: the batch executes in
// order and stops at the first non-ok verdict, mirroring an embedded
// script halting on its first alert.
type CommandBatch struct {
	Commands []action.Command `json:"commands"`
}

// Outcome values of a CommandResult.
const (
	OutcomeOK      = "ok"      // checked, executed, post-checked
	OutcomeBlocked = "blocked" // a RABIT alert; Alert carries it
	OutcomeError   = "error"   // validation or execution failure
)

// CommandResult is one streamed verdict line.
type CommandResult struct {
	Seq     int        `json:"seq"`
	Cmd     string     `json:"cmd"`
	Outcome string     `json:"outcome"`
	Detail  string     `json:"detail,omitempty"`
	Alert   *AlertInfo `json:"alert,omitempty"`
}

// AlertInfo is the wire form of a raised safety alert.
type AlertInfo struct {
	Kind   string `json:"kind"`
	Device string `json:"device"`
	Seq    int    `json:"seq"`
	Detail string `json:"detail"`
}

// alertInfo converts an engine alert.
func alertInfo(a *core.Alert) *AlertInfo {
	return &AlertInfo{
		Kind:   a.Kind.Slug(),
		Device: a.Cmd.Device,
		Seq:    a.Cmd.Seq,
		Detail: a.Error(),
	}
}

// result maps one interceptor verdict onto the wire. seq is the
// sequence the interceptor stamped on the command — echoed both in the
// Seq field and in the rendered command string.
func result(cmd action.Command, seq int, err error) CommandResult {
	cmd.Seq = seq
	r := CommandResult{Seq: seq, Cmd: cmd.String(), Outcome: OutcomeOK}
	if err == nil {
		return r
	}
	r.Detail = err.Error()
	if a, ok := core.AsAlert(err); ok {
		r.Outcome = OutcomeBlocked
		r.Alert = alertInfo(a)
	} else {
		r.Outcome = OutcomeError
	}
	return r
}

// TenantStatus is one pooled lab's row on /v1/labs.
type TenantStatus struct {
	Lab      string `json:"lab"`
	Sessions int    `json:"sessions"`
	Alerts   int    `json:"alerts"`
	Stopped  string `json:"stopped,omitempty"`
	Ready    bool   `json:"ready"`
}

// ErrorBody is every non-2xx JSON body.
type ErrorBody struct {
	Error string `json:"error"`
}
