// Package gateway is the multi-lab safety-gateway service: a
// long-running HTTP+JSON front for a pool of per-lab rabit.System
// engines. Each lab tenant owns one System (lazily instantiated from a
// named or inline lab spec and evicted when idle); experiment scripts
// attach sessions to a tenant and stream commands through the tenant's
// engine exactly as an embedded interceptor would — same checks, same
// verdicts, same alerts. Admission control is per tenant: a bounded
// queue of concurrently admitted command batches, with overflow pushed
// back to the client (HTTP 429 + Retry-After) instead of queueing
// unboundedly inside the safety path. Drain is a real gate shared with
// the engines underneath: once draining, new command batches are
// rejected with ErrDraining while every in-flight batch finishes its
// checks, then each tenant's recorders and traces flush.
package gateway

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/config"
	"repro/internal/labs"
	"repro/internal/obs"
	"repro/internal/trace"
)

// ErrDraining is returned (and served as 503) for command batches and
// sessions submitted after Drain: the gateway's admission gate rejected
// them before any check or execution.
var ErrDraining = rabit.ErrDraining

// Defaults.
const (
	// DefaultQueueDepth is the per-tenant admission bound: how many
	// command batches may be in flight on one lab at once before the
	// gateway pushes back with 429.
	DefaultQueueDepth = 4
	// DefaultMaxTenants caps the engine pool.
	DefaultMaxTenants = 16
	// DefaultWriteTimeout bounds each write of a streamed NDJSON verdict
	// response: a client that stops reading cannot pin a session lock
	// and an admission token for longer than this per verdict line. The
	// aborted stream increments rabit_gateway_slow_client_aborts_total.
	DefaultWriteTimeout = 10 * time.Second
)

// Options configures a Gateway.
type Options struct {
	// System is the option template every tenant's System is built
	// from. ObsGroup is overridden with the gateway's own group —
	// tenants must never register into another service's introspection
	// domain — and TraceFile must be empty (per-tenant trace files
	// would collide on one path).
	System rabit.Options
	// QueueDepth bounds concurrently admitted command batches per
	// tenant (default DefaultQueueDepth).
	QueueDepth int
	// MaxTenants caps the engine pool (default DefaultMaxTenants);
	// session creation for a new lab beyond the cap fails.
	MaxTenants int
	// IdleTimeout evicts a tenant once it has had no sessions and no
	// traffic for this long (its System is closed and its engine
	// released). Zero keeps tenants forever.
	IdleTimeout time.Duration
	// WriteTimeout bounds each write on a streamed verdict response
	// (default DefaultWriteTimeout); see the slow-client guard in
	// handleCommands. Negative disables the deadline.
	WriteTimeout time.Duration
	// ConfigureSystem, when set, runs after each tenant's System is
	// built and before it serves commands — the evaluation harness uses
	// it to set execution pacing on the tenant's environment.
	ConfigureSystem func(lab string, sys *rabit.System)
}

// tenant is one lab's pooled engine plus its admission queue.
type tenant struct {
	lab string
	sys *rabit.System
	// sem holds QueueDepth admission tokens; a command batch try-
	// acquires one and full means 429, never an unbounded queue in
	// front of the safety checks.
	sem      chan struct{}
	sessions int
	lastUsed time.Time

	// Cached per-tenant instruments (ISSUE 10): the RED set plus
	// admission-queue depth, rejections, and active sessions, all
	// tenant-labeled series of the gateway's own registry. Resolved once
	// at tenant construction so the request path is atomic increments.
	mReqs     *obs.Counter
	mErrs     *obs.Counter
	mRejects  *obs.Counter
	mDur      *obs.Histogram
	mQueue    *obs.Gauge
	mSessions *obs.Gauge
}

// session is one experiment script's attachment to a tenant: its own
// interceptor (own command sequence, own run trace) sharing the
// tenant's engine, exactly the sharded deployment of the evaluation
// harness.
type session struct {
	id     string
	tenant *tenant
	ic     *trace.Interceptor
	// mu serializes command batches on the session so one script's
	// NDJSON response stream is never interleaved with another batch on
	// the same session. seq mirrors the interceptor's per-command
	// sequence (one increment per Do), giving each streamed verdict the
	// same seq its trace record carries.
	mu     sync.Mutex
	seq    int
	closed atomic.Bool
}

// Gateway is the engine pool and session table behind the HTTP API.
type Gateway struct {
	opts  Options
	group *obs.Group
	// reg is the gateway's own registry (scrape alias "gateway"): the
	// tenant-labeled admission and RED families live here, beside — not
	// inside — the tenants' per-System registries, so tenant eviction
	// never erases the gateway's view of that lab's request history.
	reg         *obs.Registry
	famReqs     *obs.Family
	famErrs     *obs.Family
	famRejects  *obs.Family
	famDur      *obs.Family
	famQueue    *obs.Family
	famSessions *obs.Family
	cSlowAborts *obs.Counter

	mu       sync.Mutex
	tenants  map[string]*tenant
	sessions map[string]*session
	sessSeq  int
	closed   bool

	// draining is the admission gate; inflight counts admitted command
	// batches. The pairing mirrors the engine's own gate: admission
	// increments inflight first and then checks the gate, drain closes
	// the gate first and then waits inflight out, so under sequentially
	// consistent atomics a batch racing a drain is either seen by the
	// wait or rejected — never silently admitted after /readyz flips.
	draining  atomic.Bool
	inflight  atomic.Int64
	drainOnce sync.Once

	health      *obs.HealthReg
	janitorStop chan struct{}
	janitorDone chan struct{}
}

// New builds a gateway with an empty engine pool and its own
// introspection group.
func New(opts Options) *Gateway {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.MaxTenants <= 0 {
		opts.MaxTenants = DefaultMaxTenants
	}
	if opts.WriteTimeout == 0 {
		opts.WriteTimeout = DefaultWriteTimeout
	}
	opts.System.TraceFile = ""
	g := &Gateway{
		opts:     opts,
		group:    obs.NewGroup(),
		reg:      obs.NewRegistry("gateway"),
		tenants:  map[string]*tenant{},
		sessions: map[string]*session{},
	}
	g.group.Register(g.reg)
	g.famReqs = g.reg.CounterFamily(obs.FamilyGatewayRequests, obs.LabelTenant)
	g.famErrs = g.reg.CounterFamily(obs.FamilyGatewayErrors, obs.LabelTenant)
	g.famRejects = g.reg.CounterFamily(obs.FamilyGatewayRejections, obs.LabelTenant)
	g.famDur = g.reg.HistogramFamily(obs.FamilyGatewayRequest, obs.LabelTenant)
	g.famQueue = g.reg.GaugeFamily(obs.FamilyGatewayQueueDepth, obs.LabelTenant)
	g.famSessions = g.reg.GaugeFamily(obs.FamilyGatewaySessions, obs.LabelTenant)
	g.cSlowAborts = g.reg.Counter(obs.CounterGatewaySlowClientAborts)
	g.health = g.group.RegisterHealth("gateway", func() obs.Health {
		if g.draining.Load() {
			return obs.Health{OK: true, Ready: false, Detail: "draining"}
		}
		g.mu.Lock()
		n := len(g.tenants)
		g.mu.Unlock()
		return obs.Health{OK: true, Ready: true, Detail: fmt.Sprintf("%d tenants", n)}
	})
	if opts.IdleTimeout > 0 {
		g.janitorStop = make(chan struct{})
		g.janitorDone = make(chan struct{})
		go g.janitor()
	}
	return g
}

// Group returns the gateway's introspection group: every tenant's
// registries, health components, and SLOs, plus the gateway's own
// admission state. Handler mounts its routes; rabitd serves them on the
// gateway listener.
func (g *Gateway) Group() *obs.Group { return g.group }

// resolveSpec maps a create-session request onto a lab spec: an inline
// spec wins, else a named lab ("testbed", "hein", "berlinguette").
func resolveSpec(lab string, raw []byte) (*config.LabSpec, error) {
	if len(raw) > 0 {
		spec, diags := config.Parse(raw)
		if spec == nil {
			msg := "invalid lab spec"
			if len(diags) > 0 {
				msg = diags[0].String()
			}
			return nil, fmt.Errorf("gateway: %s", msg)
		}
		return spec, nil
	}
	switch lab {
	case "testbed":
		return labs.TestbedSpec(), nil
	case "hein", "hein-production":
		return labs.HeinProductionSpec(), nil
	case "berlinguette":
		return labs.BerlinguetteSpec(), nil
	case "":
		return nil, errors.New("gateway: session needs a lab name or an inline spec")
	default:
		return nil, fmt.Errorf("gateway: unknown lab %q (named labs: testbed, hein, berlinguette; or send an inline spec)", lab)
	}
}

// tenantFor returns the lab's pooled tenant, lazily building its System
// on first use. Tenants are keyed by the spec's lab name: the first
// session's spec wins, later sessions attach to the running engine.
func (g *Gateway) tenantFor(spec *config.LabSpec) (*tenant, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, ErrDraining
	}
	if t, ok := g.tenants[spec.Lab]; ok {
		return t, nil
	}
	if len(g.tenants) >= g.opts.MaxTenants {
		return nil, fmt.Errorf("gateway: tenant pool full (%d labs)", g.opts.MaxTenants)
	}
	o := g.opts.System
	o.ObsGroup = g.group
	// Each tenant's safety SLOs carry its lab as the tenant label, so
	// per-tenant burn rates export as distinct series.
	o.Tenant = spec.Lab
	if o.IncidentTag == "" {
		o.IncidentTag = spec.Lab
	}
	sys, err := rabit.New(spec, o)
	if err != nil {
		return nil, err
	}
	if g.opts.ConfigureSystem != nil {
		g.opts.ConfigureSystem(spec.Lab, sys)
	}
	t := &tenant{
		lab:       spec.Lab,
		sys:       sys,
		sem:       make(chan struct{}, g.opts.QueueDepth),
		lastUsed:  time.Now(),
		mReqs:     g.famReqs.Counter(spec.Lab),
		mErrs:     g.famErrs.Counter(spec.Lab),
		mRejects:  g.famRejects.Counter(spec.Lab),
		mDur:      g.famDur.Histogram(spec.Lab),
		mQueue:    g.famQueue.Gauge(spec.Lab),
		mSessions: g.famSessions.Gauge(spec.Lab),
	}
	g.tenants[spec.Lab] = t
	return t, nil
}

// CreateSession binds a new session to the lab's tenant and returns its
// ID. raw, when non-empty, is an inline lab-spec JSON document.
func (g *Gateway) CreateSession(lab string, raw []byte) (string, string, error) {
	if g.draining.Load() {
		return "", "", ErrDraining
	}
	spec, err := resolveSpec(lab, raw)
	if err != nil {
		return "", "", err
	}
	t, err := g.tenantFor(spec)
	if err != nil {
		return "", "", err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return "", "", ErrDraining
	}
	g.sessSeq++
	id := fmt.Sprintf("s%04d-%s", g.sessSeq, t.lab)
	ic := trace.NewInterceptor(t.sys.Engine, t.sys.Env)
	ic.SetObserver(t.sys.Obs)
	ic.SetRecorder(t.sys.Recorder)
	ic.SetTracer(t.sys.Tracer)
	s := &session{id: id, tenant: t, ic: ic}
	g.sessions[id] = s
	t.sessions++
	t.mSessions.Set(int64(t.sessions))
	t.lastUsed = time.Now()
	return id, t.lab, nil
}

// lookup returns a session by ID.
func (g *Gateway) lookup(id string) (*session, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.sessions[id]
	return s, ok
}

// CloseSession detaches a session: its run trace closes (making its
// tail-sampling decision) and its ID is forgotten. The tenant's engine
// stays pooled for other sessions or until idle eviction.
func (g *Gateway) CloseSession(id string) error {
	g.mu.Lock()
	s, ok := g.sessions[id]
	if ok {
		delete(g.sessions, id)
		s.tenant.sessions--
		s.tenant.mSessions.Set(int64(s.tenant.sessions))
		s.tenant.lastUsed = time.Now()
	}
	g.mu.Unlock()
	if !ok {
		return fmt.Errorf("gateway: unknown session %q", id)
	}
	s.closed.Store(true)
	s.mu.Lock()
	s.ic.FinishTrace()
	s.mu.Unlock()
	return nil
}

// admitBatch is the gateway-level admission gate for one command batch:
// inflight is incremented before the gate is read, so Drain's
// store-then-wait can never miss a batch it did not reject. The caller
// must call releaseBatch exactly once when admitted.
func (g *Gateway) admitBatch() bool {
	g.inflight.Add(1)
	if g.draining.Load() {
		g.inflight.Add(-1)
		return false
	}
	return true
}

func (g *Gateway) releaseBatch() { g.inflight.Add(-1) }

// Drain gates the gateway for shutdown: new sessions and command
// batches are rejected with ErrDraining, /readyz flips to unready,
// every in-flight batch finishes its checks, and then each tenant's
// System drains (closing the engine admission gate and flushing
// recorders and traces). Idempotent; blocks until quiesced.
func (g *Gateway) Drain() {
	g.drainOnce.Do(func() {
		g.draining.Store(true)
		if g.janitorStop != nil {
			close(g.janitorStop)
			<-g.janitorDone
		}
		for g.inflight.Load() > 0 {
			time.Sleep(200 * time.Microsecond)
		}
		g.mu.Lock()
		tenants := make([]*tenant, 0, len(g.tenants))
		for _, t := range g.tenants {
			tenants = append(tenants, t)
		}
		g.mu.Unlock()
		for _, t := range tenants {
			t.sys.Drain()
		}
	})
}

// Close drains the gateway and closes every tenant System, aggregating
// their flush errors with errors.Join.
func (g *Gateway) Close() error {
	g.Drain()
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	tenants := g.tenants
	g.tenants = map[string]*tenant{}
	g.sessions = map[string]*session{}
	g.mu.Unlock()
	g.health.Unregister()
	var errs []error
	for _, t := range tenants {
		if err := t.sys.Close(); err != nil {
			errs = append(errs, fmt.Errorf("gateway: tenant %s: %w", t.lab, err))
		}
	}
	return errors.Join(errs...)
}

// janitor evicts idle tenants: no sessions and no traffic for
// IdleTimeout. The evicted System drains and closes, releasing its
// engine, registries, and health components.
func (g *Gateway) janitor() {
	defer close(g.janitorDone)
	tick := time.NewTicker(g.opts.IdleTimeout / 2)
	defer tick.Stop()
	for {
		select {
		case <-g.janitorStop:
			return
		case <-tick.C:
		}
		var evict []*tenant
		g.mu.Lock()
		for lab, t := range g.tenants {
			if t.sessions == 0 && time.Since(t.lastUsed) >= g.opts.IdleTimeout {
				delete(g.tenants, lab)
				evict = append(evict, t)
			}
		}
		g.mu.Unlock()
		for _, t := range evict {
			t.sys.Close()
		}
	}
}

// Tenants reports the current pool for /v1/labs and the eval harness.
func (g *Gateway) Tenants() []TenantStatus {
	g.mu.Lock()
	type row struct {
		t        *tenant
		sessions int
	}
	rows := make([]row, 0, len(g.tenants))
	for _, t := range g.tenants {
		rows = append(rows, row{t: t, sessions: t.sessions})
	}
	g.mu.Unlock()
	out := make([]TenantStatus, 0, len(rows))
	for _, r := range rows {
		t := r.t
		st := TenantStatus{Lab: t.lab, Sessions: r.sessions, Ready: true}
		if t.sys.Engine != nil {
			st.Alerts = len(t.sys.Engine.Alerts())
			if a := t.sys.Engine.Stopped(); a != nil {
				st.Stopped = a.Kind.Slug()
				st.Ready = false
			}
			if t.sys.Engine.Draining() {
				st.Ready = false
			}
		}
		out = append(out, st)
	}
	return out
}
