package gateway

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// Handler returns the gateway mux: the /v1 session API plus the
// gateway group's introspection routes (/metrics, /metrics/prom,
// /healthz, /readyz, /traces, /debug/pprof) on the same listener — one
// port serves both the safety API and its own observability.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", g.handleCreateSession)
	mux.HandleFunc("GET /v1/sessions/{id}", g.handleSessionInfo)
	mux.HandleFunc("DELETE /v1/sessions/{id}", g.handleCloseSession)
	mux.HandleFunc("POST /v1/sessions/{id}/commands", g.handleCommands)
	mux.HandleFunc("GET /v1/labs", g.handleLabs)
	mux.Handle("/", g.group.Handler())
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorBody{Error: err.Error()})
}

func (g *Gateway) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id, lab, err := g.CreateSession(req.Lab, req.Spec)
	switch {
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, SessionInfo{SessionID: id, Lab: lab})
}

func (g *Gateway) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	s, ok := g.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("gateway: unknown session"))
		return
	}
	writeJSON(w, http.StatusOK, SessionInfo{
		SessionID: s.id,
		Lab:       s.tenant.lab,
		Commands:  len(s.ic.Records()),
	})
}

func (g *Gateway) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	if err := g.CloseSession(r.PathValue("id")); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *Gateway) handleLabs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, g.Tenants())
}

// handleCommands runs one command batch through the session's
// interceptor, streaming each verdict back as one NDJSON line the
// moment it lands. The batch stops at the first non-ok verdict —
// embedded script semantics. Admission is two-staged: the gateway-wide
// drain gate (503 once draining), then the tenant's bounded queue (429
// + Retry-After when QueueDepth batches are already in flight on the
// lab).
func (g *Gateway) handleCommands(w http.ResponseWriter, r *http.Request) {
	s, ok := g.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("gateway: unknown session"))
		return
	}
	if s.closed.Load() {
		writeErr(w, http.StatusConflict, errors.New("gateway: session closed"))
		return
	}
	var batch CommandBatch
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if !g.admitBatch() {
		writeErr(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	defer g.releaseBatch()
	t := s.tenant
	select {
	case t.sem <- struct{}{}:
	default:
		t.mRejects.Inc()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests,
			errors.New("gateway: lab "+t.lab+" admission queue full"))
		return
	}
	t.mQueue.Set(int64(len(t.sem)))
	defer func() {
		<-t.sem
		t.mQueue.Set(int64(len(t.sem)))
	}()
	g.mu.Lock()
	t.lastUsed = time.Now()
	g.mu.Unlock()

	// RED accounting: the batch is the request unit. A batch whose
	// stream ends in any error — alert, engine error, or a severed slow
	// client — counts against the tenant's error series.
	t.mReqs.Inc()
	start := time.Now()
	defer func() { t.mDur.Observe(time.Since(start)) }()

	s.mu.Lock()
	defer s.mu.Unlock()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	// Slow-client guard: every verdict line must be written (and
	// flushed) within WriteTimeout, or the stream is severed. Without a
	// deadline, a client that stops reading pins this session's lock and
	// one of the tenant's QueueDepth admission tokens indefinitely —
	// starving the lab's other scripts off a full verdict buffer.
	rc := http.NewResponseController(w)
	for i, cmd := range batch.Commands {
		var err error
		if i+1 < len(batch.Commands) {
			// The batch is the lookahead's ideal input: the next queued
			// command is always known, so the engine can pre-validate it
			// while this one executes.
			err = s.ic.DoLookahead(cmd, batch.Commands[i+1])
		} else {
			err = s.ic.Do(cmd)
		}
		s.seq++
		if g.opts.WriteTimeout > 0 {
			_ = rc.SetWriteDeadline(time.Now().Add(g.opts.WriteTimeout))
		}
		if werr := enc.Encode(result(cmd, s.seq, err)); werr != nil {
			g.cSlowAborts.Inc()
			t.mErrs.Inc()
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if err != nil {
			t.mErrs.Inc()
			return
		}
	}
}
