package gateway

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/action"
	"repro/internal/obs"
)

// scrapeOM fetches /metrics/prom with OpenMetrics content negotiation
// and runs the exposition through the grammar validator.
func scrapeOM(t *testing.T, base string) string {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, base+"/metrics/prom", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/openmetrics-text") {
		t.Fatalf("content type %q, want openmetrics", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateOpenMetrics(body); err != nil {
		t.Fatalf("exposition fails the OpenMetrics grammar: %v\n%s", err, body)
	}
	return string(body)
}

// Two tenants behind one gateway: every tenant-labeled series must
// account only its own lab's traffic — requests, errors, rejections,
// sessions, and the per-tenant SLO burn rates — with zero label bleed
// into the idle tenant.
func TestGatewayTenantMetricsIsolation(t *testing.T) {
	gw, srv := newTestGateway(t, Options{QueueDepth: 2})
	busy := createSession(t, srv, CreateSessionRequest{Spec: rawSpec(t, fleetSpec("iso-busy", 1))})
	_ = createSession(t, srv, CreateSessionRequest{Spec: rawSpec(t, fleetSpec("iso-idle", 1))})

	ok := []action.Command{{Device: "hp00", Action: action.ReadStatus}}
	for i := 0; i < 2; i++ {
		if got, status := postBatch(t, srv, busy.id(), ok); status != http.StatusOK || len(got) != 1 {
			t.Fatalf("ok batch %d: status %d, %d verdicts", i, status, len(got))
		}
	}
	// One erroring batch: the blocked setpoint lands in the busy
	// tenant's error series.
	bad := []action.Command{{Device: "hp00", Action: action.SetActionValue, Value: 400}}
	if got, status := postBatch(t, srv, busy.id(), bad); status != http.StatusOK || len(got) != 1 || got[0].Outcome != OutcomeBlocked {
		t.Fatalf("blocked batch: status %d, verdicts %v", status, got)
	}
	// One backpressure rejection: saturate the busy tenant's admission
	// queue by hand and bounce a batch off it.
	bt := gw.tenants["iso-busy"]
	for i := 0; i < cap(bt.sem); i++ {
		bt.sem <- struct{}{}
	}
	raw, _ := json.Marshal(CommandBatch{Commands: ok})
	resp, err := http.Post(srv.URL+"/v1/sessions/"+busy.id()+"/commands", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated queue: status %d, want 429", resp.StatusCode)
	}
	for i := 0; i < cap(bt.sem); i++ {
		<-bt.sem
	}

	text := scrapeOM(t, srv.URL)
	for _, want := range []string{
		`rabit_gateway_requests_total{reg="gateway",tenant="iso-busy"} 3`,
		`rabit_gateway_errors_total{reg="gateway",tenant="iso-busy"} 1`,
		`rabit_gateway_rejections_total{reg="gateway",tenant="iso-busy"} 1`,
		`rabit_gateway_sessions{reg="gateway",tenant="iso-busy"} 1`,
		// The idle tenant's series exist (instruments resolve at tenant
		// construction) and hold exactly zero — no bleed.
		`rabit_gateway_requests_total{reg="gateway",tenant="iso-idle"} 0`,
		`rabit_gateway_errors_total{reg="gateway",tenant="iso-idle"} 0`,
		`rabit_gateway_rejections_total{reg="gateway",tenant="iso-idle"} 0`,
		`rabit_gateway_sessions{reg="gateway",tenant="iso-idle"} 1`,
		`rabit_gateway_request_seconds_count{reg="gateway",tenant="iso-idle"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The request-duration histogram counted exactly the busy tenant's
	// three batches.
	if !strings.Contains(text, `rabit_gateway_request_seconds_count{reg="gateway",tenant="iso-busy"} 3`) {
		t.Errorf("busy tenant's duration histogram did not count 3 batches")
	}
	// Per-tenant SLO series: each tenant's safety SLOs carry its lab as
	// the tenant label, and neither label leaks into the other's series.
	if !strings.Contains(text, `tenant="iso-busy"} `) || !strings.Contains(text, "rabit_slo_objective{slo=") {
		t.Errorf("per-tenant SLO series missing")
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, `tenant="iso-busy"`) && strings.Contains(line, `tenant="iso-idle"`) {
			t.Errorf("tenant labels bleed into one sample: %q", line)
		}
	}
}

// stallWriter is a ResponseWriter whose underlying connection has
// stopped accepting bytes: every write after the first fails the way a
// timed-out socket write does.
type stallWriter struct {
	hdr    http.Header
	writes int
}

func (w *stallWriter) Header() http.Header { return w.hdr }
func (w *stallWriter) WriteHeader(int)     {}
func (w *stallWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > 1 {
		return 0, errors.New("write tcp: i/o timeout (slow client)")
	}
	return len(p), nil
}

// A client that stops reading mid-stream must not pin the session or
// its admission token: the stream aborts, the abort is counted against
// the gateway and the tenant's error series, and the tenant keeps
// serving other clients.
func TestGatewaySlowClientAbort(t *testing.T) {
	gw := New(Options{WriteTimeout: 50 * time.Millisecond})
	defer gw.Close()
	id, lab, err := gw.CreateSession("", rawSpec(t, fleetSpec("stall-lab", 1)))
	if err != nil {
		t.Fatal(err)
	}

	cmds := []action.Command{
		{Device: "hp00", Action: action.ReadStatus},
		{Device: "hp00", Action: action.ReadStatus},
		{Device: "hp00", Action: action.ReadStatus},
	}
	raw, _ := json.Marshal(CommandBatch{Commands: cmds})
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/"+id+"/commands", bytes.NewReader(raw))
	w := &stallWriter{hdr: http.Header{}}
	gw.Handler().ServeHTTP(w, req)

	if got := gw.cSlowAborts.Value(); got != 1 {
		t.Fatalf("slow-client aborts = %d, want 1", got)
	}
	tn := gw.tenants[lab]
	if got := tn.mErrs.Value(); got != 1 {
		t.Fatalf("tenant errors = %d, want 1 (the severed stream)", got)
	}
	if n := len(tn.sem); n != 0 {
		t.Fatalf("severed stream leaked %d admission token(s)", n)
	}

	// The session is still usable by a healthy client: the abort
	// released the lock and the token.
	rec := httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost, "/v1/sessions/"+id+"/commands", bytes.NewReader(raw))
	gw.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("follow-up batch status %d, want 200", rec.Code)
	}
	if lines := strings.Count(strings.TrimSpace(rec.Body.String()), "\n") + 1; lines != len(cmds) {
		t.Fatalf("follow-up batch streamed %d lines, want %d", lines, len(cmds))
	}
}
