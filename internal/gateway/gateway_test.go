package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	rabit "repro"
	"repro/internal/action"
	"repro/internal/config"
	"repro/internal/core"
)

// fleetSpec is a synthetic deck of n independent hotplates (no arms,
// no shared doors), the same shape the throughput harness uses.
func fleetSpec(lab string, n int) *config.LabSpec {
	spec := &config.LabSpec{Lab: lab, FloorZ: 0}
	for i := 0; i < n; i++ {
		x := float64(i) * 0.3
		spec.Devices = append(spec.Devices, config.DeviceSpec{
			ID:   fmt.Sprintf("hp%02d", i),
			Type: "action_device", Kind: "hotplate", ClassName: "IKAHotplate",
			Cuboid: config.BoxSpec{
				Min: config.Vec{X: x, Y: 0, Z: 0},
				Max: config.Vec{X: x + 0.2, Y: 0.2, Z: 0.15},
			},
			ActionThreshold: 150,
			MaxSafeValue:    340,
		})
	}
	return spec
}

func rawSpec(t *testing.T, spec *config.LabSpec) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// newTestGateway boots a gateway on an httptest server with fast
// pacing so timed actions finish quickly.
func newTestGateway(t *testing.T, opts Options) (*Gateway, *httptest.Server) {
	t.Helper()
	if opts.ConfigureSystem == nil {
		opts.ConfigureSystem = func(_ string, sys *rabit.System) {
			sys.Env.SetPacing(1000)
		}
	}
	gw := New(opts)
	srv := httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		srv.Close()
		gw.Close()
	})
	return gw, srv
}

func createSession(t *testing.T, srv *httptest.Server, req CreateSessionRequest) SessionInfo {
	t.Helper()
	info, status := tryCreateSession(t, srv, req)
	if status != http.StatusCreated {
		t.Fatalf("create session: status %d", status)
	}
	return info
}

func tryCreateSession(t *testing.T, srv *httptest.Server, req CreateSessionRequest) (SessionInfo, int) {
	t.Helper()
	raw, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+"/v1/sessions", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info SessionInfo
	_ = json.NewDecoder(resp.Body).Decode(&info)
	return info, resp.StatusCode
}

// postBatch sends a command batch and decodes the NDJSON verdict
// stream. Non-200 responses return the status with no results.
func postBatch(t *testing.T, srv *httptest.Server, session string, cmds []action.Command) ([]CommandResult, int) {
	t.Helper()
	raw, _ := json.Marshal(CommandBatch{Commands: cmds})
	resp, err := http.Post(srv.URL+"/v1/sessions/"+session+"/commands",
		"application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out []CommandResult
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var res CommandResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out, resp.StatusCode
}

// parityScript exercises ok, blocked, and post-blocked-rejection
// verdicts: a safe heat cycle, then a setpoint over the hotplate's
// MaxSafeValue.
func parityScript() []action.Command {
	return []action.Command{
		{Device: "hp00", Action: action.SetActionValue, Value: 50},
		{Device: "hp00", Action: action.StartAction, Duration: time.Second},
		{Device: "hp00", Action: action.ReadStatus},
		{Device: "hp00", Action: action.StopAction},
		{Device: "hp00", Action: action.SetActionValue, Value: 400}, // > MaxSafeValue
		{Device: "hp00", Action: action.ReadStatus},                 // never reached
	}
}

// The gateway must produce verdicts identical to an embedded System
// running the same script: same outcomes in the same order, same alert
// kind on the blocked command.
func TestGatewayEmbeddedParity(t *testing.T) {
	script := parityScript()

	// Embedded: the same spec, same options, in-process interceptor.
	sys, err := rabit.New(fleetSpec("parity-embedded", 1), rabit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Env.SetPacing(1000)
	var embedded []CommandResult
	for i, cmd := range script {
		err := sys.Interceptor.Do(cmd)
		embedded = append(embedded, result(cmd, i+1, err))
		if err != nil {
			break // script halts at the first alert
		}
	}

	_, srv := newTestGateway(t, Options{})
	info := createSession(t, srv, CreateSessionRequest{
		Spec: rawSpec(t, fleetSpec("parity-gateway", 1)),
	})
	got, _ := postBatch(t, srv, info.SessionID, script)

	if len(got) != len(embedded) {
		t.Fatalf("gateway streamed %d verdicts, embedded produced %d", len(got), len(embedded))
	}
	for i := range got {
		if got[i].Outcome != embedded[i].Outcome {
			t.Fatalf("verdict %d: gateway %q, embedded %q", i, got[i].Outcome, embedded[i].Outcome)
		}
		if got[i].Seq != embedded[i].Seq {
			t.Fatalf("verdict %d: gateway seq %d, embedded seq %d", i, got[i].Seq, embedded[i].Seq)
		}
		ga, ea := got[i].Alert, embedded[i].Alert
		if (ga == nil) != (ea == nil) {
			t.Fatalf("verdict %d: alert presence differs (gateway %v, embedded %v)", i, ga, ea)
		}
		if ga != nil && ga.Kind != ea.Kind {
			t.Fatalf("verdict %d: alert kind gateway %q, embedded %q", i, ga.Kind, ea.Kind)
		}
	}
	if got[len(got)-1].Outcome != OutcomeBlocked {
		t.Fatalf("final verdict %q, want blocked (the over-max setpoint)", got[len(got)-1].Outcome)
	}
	if k := got[len(got)-1].Alert.Kind; k != core.AlertInvalidCommand.Slug() {
		t.Fatalf("alert kind %q, want %q", k, core.AlertInvalidCommand.Slug())
	}
}

// Four lab tenants, several sessions each, all streaming concurrently:
// every verdict lands ok, tenants stay isolated, and the pool reports
// all four labs. Run under -race this is the multi-tenant soak.
func TestGatewayConcurrentTenantSessions(t *testing.T) {
	const labsN, sessionsPerLab, commands = 4, 3, 24
	gw, srv := newTestGateway(t, Options{QueueDepth: sessionsPerLab})

	type sess struct {
		id     string
		device string
	}
	var sessions []sess
	for l := 0; l < labsN; l++ {
		spec := fleetSpec(fmt.Sprintf("conc-%02d", l), sessionsPerLab)
		for k := 0; k < sessionsPerLab; k++ {
			info := createSession(t, srv, CreateSessionRequest{Spec: rawSpec(t, spec)})
			sessions = append(sessions, sess{id: info.SessionID, device: fmt.Sprintf("hp%02d", k)})
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, len(sessions))
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s sess) {
			defer wg.Done()
			var cmds []action.Command
			for c := 0; c < commands/4; c++ {
				cmds = append(cmds,
					action.Command{Device: s.device, Action: action.SetActionValue, Value: 60},
					action.Command{Device: s.device, Action: action.StartAction, Duration: time.Second},
					action.Command{Device: s.device, Action: action.ReadStatus},
					action.Command{Device: s.device, Action: action.StopAction},
				)
			}
			got, status := postBatch(t, srv, s.id, cmds)
			if status != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", status)
				return
			}
			if len(got) != len(cmds) {
				errs[i] = fmt.Errorf("%d of %d verdicts", len(got), len(cmds))
				return
			}
			for _, r := range got {
				if r.Outcome != OutcomeOK {
					errs[i] = fmt.Errorf("verdict %d: %s: %s", r.Seq, r.Outcome, r.Detail)
					return
				}
			}
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", i, err)
		}
	}

	tenants := gw.Tenants()
	if len(tenants) != labsN {
		t.Fatalf("pool has %d tenants, want %d", len(tenants), labsN)
	}
	for _, ts := range tenants {
		if ts.Sessions != sessionsPerLab || !ts.Ready || ts.Alerts != 0 {
			t.Fatalf("tenant %+v, want %d sessions, ready, no alerts", ts, sessionsPerLab)
		}
	}
}

// A full per-tenant admission queue pushes back with 429 + Retry-After
// instead of queueing unboundedly; a second tenant is unaffected.
func TestGatewayBackpressure(t *testing.T) {
	// Slow pacing so the occupying batch holds its admission token long
	// enough for the test to observe the 429.
	_, srv := newTestGateway(t, Options{
		QueueDepth: 1,
		ConfigureSystem: func(_ string, sys *rabit.System) {
			sys.Env.SetPacing(20) // 1s action ≈ 50ms real
		},
	})
	spec := fleetSpec("busy-lab", 2)
	s1 := createSession(t, srv, CreateSessionRequest{Spec: rawSpec(t, spec)})
	s2 := createSession(t, srv, CreateSessionRequest{Spec: rawSpec(t, spec)})
	other := createSession(t, srv, CreateSessionRequest{Spec: rawSpec(t, fleetSpec("calm-lab", 1))})

	slow := []action.Command{
		{Device: "hp00", Action: action.SetActionValue, Value: 60},
		{Device: "hp00", Action: action.StartAction, Duration: 2 * time.Second},
		{Device: "hp00", Action: action.StopAction},
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if got, status := postBatch(t, srv, s1.id(), slow); status != http.StatusOK || len(got) != len(slow) {
			t.Errorf("occupying batch: status %d, %d verdicts", status, len(got))
		}
	}()

	// Wait until the occupying batch holds the tenant's only admission
	// token, then a second batch on the same lab must bounce with 429.
	var status int
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		raw, _ := json.Marshal(CommandBatch{Commands: []action.Command{
			{Device: "hp01", Action: action.ReadStatus},
		}})
		resp, err := http.Post(srv.URL+"/v1/sessions/"+s2.id()+"/commands",
			"application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		status = resp.StatusCode
		retryAfter := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if status == http.StatusTooManyRequests {
			if retryAfter == "" {
				t.Fatal("429 without Retry-After")
			}
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if status != http.StatusTooManyRequests {
		t.Fatalf("never observed 429 on the saturated lab (last status %d)", status)
	}

	// The other lab's queue is independent: it serves fine meanwhile.
	if got, st := postBatch(t, srv, other.id(), []action.Command{
		{Device: "hp00", Action: action.ReadStatus},
	}); st != http.StatusOK || len(got) != 1 || got[0].Outcome != OutcomeOK {
		t.Fatalf("calm lab affected by busy lab: status %d, verdicts %v", st, got)
	}
	<-done
}

// id lets SessionInfo be used tersely in tests.
func (s SessionInfo) id() string { return s.SessionID }

// Drain must finish in-flight batches (no dropped verdicts), reject
// new sessions and batches with 503/ErrDraining, and flip /readyz —
// all before the listener would close.
func TestGatewayDrainFinishesInFlight(t *testing.T) {
	gw, srv := newTestGateway(t, Options{
		ConfigureSystem: func(_ string, sys *rabit.System) {
			sys.Env.SetPacing(50) // 1s action = 20ms real: a real in-flight window
		},
	})
	info := createSession(t, srv, CreateSessionRequest{Spec: rawSpec(t, fleetSpec("drain-lab", 1))})

	var cmds []action.Command
	for c := 0; c < 8; c++ {
		cmds = append(cmds,
			action.Command{Device: "hp00", Action: action.SetActionValue, Value: 60},
			action.Command{Device: "hp00", Action: action.StartAction, Duration: time.Second},
			action.Command{Device: "hp00", Action: action.StopAction},
		)
	}
	type batchOut struct {
		results []CommandResult
		status  int
	}
	outc := make(chan batchOut, 1)
	go func() {
		got, status := postBatch(t, srv, info.SessionID, cmds)
		outc <- batchOut{got, status}
	}()
	// Give the batch a moment to be admitted and mid-flight.
	deadline := time.Now().Add(5 * time.Second)
	for gw.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch never went in flight")
		}
		time.Sleep(time.Millisecond)
	}

	gw.Drain()

	// Every in-flight verdict arrived: drain waited the batch out.
	out := <-outc
	if out.status != http.StatusOK {
		t.Fatalf("in-flight batch status %d", out.status)
	}
	if len(out.results) != len(cmds) {
		t.Fatalf("in-flight batch dropped verdicts: %d of %d", len(out.results), len(cmds))
	}
	for _, r := range out.results {
		if r.Outcome != OutcomeOK {
			t.Fatalf("in-flight verdict %d: %s: %s", r.Seq, r.Outcome, r.Detail)
		}
	}

	// New batches and sessions are rejected with 503.
	if _, status := postBatch(t, srv, info.SessionID, cmds[:1]); status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain batch status %d, want 503", status)
	}
	if _, status := tryCreateSession(t, srv, CreateSessionRequest{Lab: "testbed"}); status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain session status %d, want 503", status)
	}

	// /readyz reports unready: the gateway component is draining and
	// the tenant engines report drained.
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	_, _ = body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz status %d after drain, want 503", resp.StatusCode)
	}
	if !strings.Contains(body.String(), "draining") {
		t.Fatalf("/readyz body %q does not name the draining gateway", body.String())
	}

	// The engine gate underneath is closed too: a direct submit on the
	// tenant's engine is ErrDraining territory, proven via a fresh
	// session being impossible and the typed error surfacing on the
	// batch rejection path above.
	if !gw.draining.Load() {
		t.Fatal("draining flag not latched")
	}
}

// The rabitd shutdown sequence: drain gates and flushes while the
// listener still answers, and only Shutdown afterwards closes it.
func TestGatewayDrainThenListenerClose(t *testing.T) {
	gw := New(Options{})
	defer gw.Close()
	srv, err := gw.Group().ServeHandler("localhost:0", gw.Handler())
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr

	raw, _ := json.Marshal(CreateSessionRequest{Lab: "testbed"})
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: %d", resp.StatusCode)
	}

	gw.Drain()

	// Drained but still listening: /readyz answers 503 over the wire.
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("listener closed before drain completed: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz %d while drained, want 503", resp.StatusCode)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := net.DialTimeout("tcp", srv.Addr, 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

// An idle tenant is evicted: its engine closes and the pool forgets it;
// an active tenant stays.
func TestGatewayIdleEviction(t *testing.T) {
	gw, srv := newTestGateway(t, Options{IdleTimeout: 50 * time.Millisecond})
	info := createSession(t, srv, CreateSessionRequest{Spec: rawSpec(t, fleetSpec("ephemeral", 1))})
	keep := createSession(t, srv, CreateSessionRequest{Spec: rawSpec(t, fleetSpec("resident", 1))})
	_ = keep

	// While its session is open the tenant must survive any idle span.
	time.Sleep(120 * time.Millisecond)
	if n := len(gw.Tenants()); n != 2 {
		t.Fatalf("open-session tenant evicted: %d tenants", n)
	}

	// Close one session; only that tenant becomes evictable.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sessions/"+info.SessionID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for len(gw.Tenants()) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("idle tenant never evicted: %v", gw.Tenants())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if gw.Tenants()[0].Lab != "resident" {
		t.Fatalf("wrong tenant evicted: %v", gw.Tenants())
	}
}

// Unknown sessions, closed sessions, and bad specs fail with the right
// statuses.
func TestGatewayErrorPaths(t *testing.T) {
	_, srv := newTestGateway(t, Options{})

	if _, status := postBatch(t, srv, "nope", nil); status != http.StatusNotFound {
		t.Fatalf("unknown session: %d, want 404", status)
	}
	if _, status := tryCreateSession(t, srv, CreateSessionRequest{}); status != http.StatusBadRequest {
		t.Fatalf("empty create: %d, want 400", status)
	}
	if _, status := tryCreateSession(t, srv, CreateSessionRequest{Lab: "atlantis"}); status != http.StatusBadRequest {
		t.Fatalf("unknown lab: %d, want 400", status)
	}
	if _, status := tryCreateSession(t, srv, CreateSessionRequest{Spec: []byte(`{"lab":`)}); status != http.StatusBadRequest {
		t.Fatalf("broken spec: %d, want 400", status)
	}

	info := createSession(t, srv, CreateSessionRequest{Spec: rawSpec(t, fleetSpec("closing", 1))})
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sessions/"+info.SessionID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("close session: %d, want 204", resp.StatusCode)
	}
	if _, status := postBatch(t, srv, info.SessionID, nil); status != http.StatusNotFound {
		t.Fatalf("batch on closed session: %d, want 404", status)
	}
}
