package sim

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/geom"
	"repro/internal/rules"
)

// rasterizer is a small software renderer standing in for the Extended
// Simulator's GUI. The paper's deployment ran the GUI inside a virtual
// machine and invoked it on every collision check, which dominated the
// 112% overhead; renderScene reproduces that cost class with real work:
// every check paints the deck cuboids and the arm capsules into an
// offscreen RGBA framebuffer (orthographic projection, painter's
// algorithm with a depth buffer).
type rasterizer struct {
	w, h   int
	pix    []uint32
	depth  []float32
	frames int
	// view maps deck coordinates to the framebuffer: a fixed oblique
	// projection that keeps X→right, Y→depth, Z→up.
	scale float64
	offX  float64
	offY  float64
}

func newRasterizer(w, h int) *rasterizer {
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 480
	}
	return &rasterizer{
		w: w, h: h,
		pix:   make([]uint32, w*h),
		depth: make([]float32, w*h),
		scale: float64(h) * 0.8,
		offX:  float64(w) * 0.25,
		offY:  float64(h) * 0.85,
	}
}

// project maps a deck-frame point to screen coordinates plus a depth key.
func (r *rasterizer) project(p geom.Vec3) (float64, float64, float64) {
	x := r.offX + (p.X+0.35*p.Y)*r.scale
	y := r.offY - (p.Z+0.20*p.Y)*r.scale
	return x, y, p.Y
}

// clear wipes the framebuffer.
func (r *rasterizer) clear() {
	for i := range r.pix {
		r.pix[i] = 0xFF202028 // dark background
		r.depth[i] = float32(math.Inf(1))
	}
}

// fillQuad rasterises a projected quadrilateral with a flat colour and a
// single depth key (adequate for a deck-scale preview).
func (r *rasterizer) fillQuad(pts [4][2]float64, depth float64, color uint32) {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p[0])
		maxX = math.Max(maxX, p[0])
		minY = math.Min(minY, p[1])
		maxY = math.Max(maxY, p[1])
	}
	x0, x1 := int(math.Max(0, minX)), int(math.Min(float64(r.w-1), maxX))
	y0, y1 := int(math.Max(0, minY)), int(math.Min(float64(r.h-1), maxY))
	d := float32(depth)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			if !pointInQuad(float64(x)+0.5, float64(y)+0.5, pts) {
				continue
			}
			i := y*r.w + x
			if d < r.depth[i] {
				r.depth[i] = d
				r.pix[i] = color
			}
		}
	}
}

// pointInQuad tests containment via the crossing rule over the 4 edges.
func pointInQuad(px, py float64, q [4][2]float64) bool {
	inside := false
	j := 3
	for i := 0; i < 4; i++ {
		xi, yi := q[i][0], q[i][1]
		xj, yj := q[j][0], q[j][1]
		if (yi > py) != (yj > py) &&
			px < (xj-xi)*(py-yi)/(yj-yi)+xi {
			inside = !inside
		}
		j = i
	}
	return inside
}

// drawBox paints the three visible faces of a deck cuboid.
func (r *rasterizer) drawBox(b geom.AABB, color uint32) {
	c := [8]geom.Vec3{
		{X: b.Min.X, Y: b.Min.Y, Z: b.Min.Z}, {X: b.Max.X, Y: b.Min.Y, Z: b.Min.Z},
		{X: b.Max.X, Y: b.Max.Y, Z: b.Min.Z}, {X: b.Min.X, Y: b.Max.Y, Z: b.Min.Z},
		{X: b.Min.X, Y: b.Min.Y, Z: b.Max.Z}, {X: b.Max.X, Y: b.Min.Y, Z: b.Max.Z},
		{X: b.Max.X, Y: b.Max.Y, Z: b.Max.Z}, {X: b.Min.X, Y: b.Max.Y, Z: b.Max.Z},
	}
	faces := [3][4]int{
		{4, 5, 6, 7}, // top
		{0, 1, 5, 4}, // front
		{1, 2, 6, 5}, // side
	}
	shades := [3]uint32{color, dim(color, 0.8), dim(color, 0.6)}
	for fi, f := range faces {
		var pts [4][2]float64
		depth := 0.0
		for k, idx := range f {
			x, y, d := r.project(c[idx])
			pts[k] = [2]float64{x, y}
			depth += d
		}
		r.fillQuad(pts, depth/4, shades[fi])
	}
}

// drawCapsule paints a capsule as a thick projected bar.
func (r *rasterizer) drawCapsule(c geom.Capsule, color uint32) {
	ax, ay, ad := r.project(c.Seg.A)
	bx, by, bd := r.project(c.Seg.B)
	// Perpendicular offset for thickness.
	dx, dy := bx-ax, by-ay
	l := math.Hypot(dx, dy)
	halfW := c.Radius * r.scale
	if halfW < 1 {
		halfW = 1
	}
	var nx, ny float64
	if l < 1e-9 {
		nx, ny = halfW, 0
		dx, dy = 0, halfW
	} else {
		nx, ny = -dy/l*halfW, dx/l*halfW
	}
	pts := [4][2]float64{
		{ax + nx, ay + ny}, {bx + nx, by + ny},
		{bx - nx, by - ny}, {ax - nx, ay - ny},
	}
	r.fillQuad(pts, (ad+bd)/2-0.001, color)
}

func dim(c uint32, f float64) uint32 {
	rr := uint32(float64((c>>16)&0xFF) * f)
	gg := uint32(float64((c>>8)&0xFF) * f)
	bb := uint32(float64(c&0xFF) * f)
	return 0xFF000000 | rr<<16 | gg<<8 | bb
}

// renderScene paints one frame: deck cuboids then the arm capsules.
func (r *rasterizer) renderScene(boxes []rules.NamedBox, caps []geom.Capsule) {
	r.clear()
	// Platform.
	r.drawBox(geom.Box(geom.V(-0.2, -0.2, -0.02), geom.V(1.2, 0.8, 0)), 0xFF3A3A44)
	for i, nb := range boxes {
		palette := [4]uint32{0xFF4C78A8, 0xFF72B7B2, 0xFFEECA3B, 0xFFB279A2}
		r.drawBox(nb.Box, palette[i%len(palette)])
	}
	for _, c := range caps {
		r.drawCapsule(c, 0xFFE45756)
	}
	r.frames++
}

// Frames reports how many frames have been rendered.
func (r *rasterizer) Frames() int { return r.frames }

// ASCII renders the current framebuffer as a coarse ASCII view (for the
// labsim CLI), sampling every cell and mapping occupancy to characters.
func (r *rasterizer) ASCII(cols, rows int) string {
	if cols <= 0 {
		cols = 80
	}
	if rows <= 0 {
		rows = 24
	}
	var b strings.Builder
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			x := col * r.w / cols
			y := row * r.h / rows
			p := r.pix[y*r.w+x]
			switch {
			case p == 0xFF202028:
				b.WriteByte(' ')
			case p == 0xFF3A3A44:
				b.WriteByte('.')
			case p == 0xFFE45756:
				b.WriteByte('#')
			default:
				b.WriteByte('o')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Snapshot returns basic framebuffer statistics, for tests.
func (r *rasterizer) Snapshot() string {
	lit := 0
	for _, p := range r.pix {
		if p != 0xFF202028 {
			lit++
		}
	}
	return fmt.Sprintf("%dx%d, %d frames, %d lit pixels", r.w, r.h, r.frames, lit)
}
