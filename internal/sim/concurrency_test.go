package sim

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/action"
	"repro/internal/config"
	"repro/internal/geom"
	"repro/internal/labs"
	"repro/internal/obs"
	"repro/internal/state"
)

// verdict renders a ValidTrajectory result for equality comparison.
func verdict(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}

// armScript runs a fixed command sequence against the simulator the way
// the engine does — Observe only after an accepted command — and returns
// the verdicts.
func armScript(s *Simulator, m state.Snapshot, cmds []action.Command) []string {
	out := make([]string, 0, len(cmds))
	for _, cmd := range cmds {
		err := s.ValidTrajectory(cmd, m)
		out = append(out, verdict(err))
		if err == nil {
			s.Observe(cmd, m)
		}
	}
	return out
}

func moveOn(arm string, target geom.Vec3) action.Command {
	return action.Command{Device: arm, Action: action.MoveRobot, Target: target}
}

// TestConcurrentChecksMatchSerial drives trajectory checks for the two
// testbed arms from concurrent goroutines (each interleaving Observe on
// its own arm, so ValidTrajectory and Observe race across arms) and
// asserts the verdicts are identical to a serial run. Run with -race this
// also proves the sharded locking has no data race.
func TestConcurrentChecksMatchSerial(t *testing.T) {
	lab, err := labs.Testbed()
	if err != nil {
		t.Fatal(err)
	}
	m := lab.InitialModelState()
	scripts := map[string][]action.Command{
		"viperx": {
			moveOn("viperx", geom.V(0.32, 0.22, 0.25)),
			moveOn("viperx", geom.V(0.35, 0.25, 0.05)), // grid collision: rejected
			moveOn("viperx", geom.V(0.15, 0.30, 0.25)),
			{Device: "viperx", Action: action.MoveHome},
			moveOn("viperx", geom.V(0.35, 0.64, 0.30)), // beyond the back wall
			{Device: "viperx", Action: action.MoveSleep},
		},
		"ned2": {
			moveOn("ned2", geom.V(-0.2, 0.2, 0.2)),
			moveOn("ned2", geom.V(-0.17, -0.22, 0.08)), // into the centrifuge half
			{Device: "ned2", Action: action.MoveHome},
			moveOn("ned2", geom.V(0.1, 0.1, 1.5)), // unplannable
			{Device: "ned2", Action: action.MoveSleep},
		},
	}

	serialSim, err := New(lab)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{}
	for arm, cmds := range scripts {
		want[arm] = armScript(serialSim, m, cmds)
	}

	concSim, err := New(lab)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][]string{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for arm, cmds := range scripts {
		wg.Add(1)
		go func(arm string, cmds []action.Command) {
			defer wg.Done()
			vs := armScript(concSim, m, cmds)
			mu.Lock()
			got[arm] = vs
			mu.Unlock()
		}(arm, cmds)
	}
	// A reader hammering the mirrors while both checkers run.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_, _ = concSim.ArmTCP("viperx")
				_ = concSim.Checks()
			}
		}
	}()
	wg.Wait()
	close(done)

	for arm := range scripts {
		if len(got[arm]) != len(want[arm]) {
			t.Fatalf("%s: %d verdicts, want %d", arm, len(got[arm]), len(want[arm]))
		}
		for i := range want[arm] {
			if got[arm][i] != want[arm][i] {
				t.Errorf("%s cmd %d: concurrent verdict %q, serial %q", arm, i, got[arm][i], want[arm][i])
			}
		}
	}
	if concSim.Checks() != serialSim.Checks() {
		t.Errorf("checks = %d, want %d", concSim.Checks(), serialSim.Checks())
	}
}

// TestBroadphaseVerdictEquivalence sweeps a deterministic grid of targets
// across the deck — accepting and rejecting moves against every solid
// class (cuboid, rounded, wall, platform, unplannable) — and asserts the
// broadphase-pruned simulator returns exactly the verdicts (including
// reasons) of the unpruned one. The scenario geometry of the Table III/IV
// controlled experiments (the grid-collision move, the footnote-2
// centrifuge crossing, the wall strike) is exercised explicitly below.
func TestBroadphaseVerdictEquivalence(t *testing.T) {
	lab, err := labs.Testbed()
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := New(lab)
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(lab, WithBroadphase(false))
	if err != nil {
		t.Fatal(err)
	}
	m := lab.InitialModelState()
	// A gripped vial extends the swept volume downward.
	held := m.Clone()
	held.Set(state.Holding("viperx"), state.Bool(true))
	held.Set(state.HeldObject("viperx"), state.Str("vial_1"))

	accepts, rejects := 0, 0
	check := func(cmd action.Command, model state.Snapshot, label string) {
		t.Helper()
		vp := verdict(pruned.ValidTrajectory(cmd, model))
		vf := verdict(full.ValidTrajectory(cmd, model))
		if vp != vf {
			t.Fatalf("%s: broadphase verdict %q, unpruned %q", label, vp, vf)
		}
		if vp == "ok" {
			accepts++
			pruned.Observe(cmd, model)
			full.Observe(cmd, model)
		} else {
			rejects++
		}
	}

	for _, x := range []float64{0.12, 0.26, 0.35, 0.5, 0.63} {
		for _, y := range []float64{-0.45, -0.18, 0.05, 0.25, 0.45, 0.64} {
			for _, z := range []float64{0.04, 0.12, 0.3} {
				cmd := moveOn("viperx", geom.V(x, y, z))
				check(cmd, m, fmt.Sprintf("grid target %v", cmd.Target))
			}
		}
	}
	// Table III scenario 3: straight into the grid body.
	check(moveOn("viperx", geom.V(0.35, 0.25, 0.05)), m, "tableIII grid collision")
	// The footnote-2 mid-path centrifuge crossing.
	for _, cmd := range []action.Command{
		moveOn("viperx", geom.V(0.63, -0.38, 0.30)),
		moveOn("viperx", geom.V(0.63, -0.38, 0.12)),
		moveOn("viperx", geom.V(0.63, -0.02, 0.12)),
	} {
		check(cmd, m, fmt.Sprintf("footnote-2 leg %v", cmd.Target))
	}
	// Table V's wall hazard: hover near the wall, then pierce it.
	check(moveOn("viperx", geom.V(0.35, 0.52, 0.35)), m, "wall hover")
	check(moveOn("viperx", geom.V(0.35, 0.64, 0.30)), m, "wall strike")
	// Held-object geometry (the Bug-13 class).
	check(moveOn("viperx", geom.V(0.45, 0.10, 0.07)), held, "held vial graze")
	check(moveOn("viperx", geom.V(0.45, 0.10, 0.30)), held, "held vial clear")

	if accepts == 0 || rejects == 0 {
		t.Fatalf("degenerate sweep: %d accepts, %d rejects — wants both", accepts, rejects)
	}
}

// TestWallPlaneNonUnitNormal is the regression test for the wall-plane
// construction: a configuration supplying a scaled (non-unit) wall normal
// describes the same plane, so the simulator must reject a wall-piercing
// trajectory exactly as it does for the unit-normal form. (Previously the
// normal was normalised without rescaling the offset, silently pushing
// the wall out of reach.)
func TestWallPlaneNonUnitNormal(t *testing.T) {
	build := func(scale float64) *Simulator {
		t.Helper()
		spec := labs.TestbedSpec()
		for i := range spec.Walls {
			spec.Walls[i].Normal.X *= scale
			spec.Walls[i].Normal.Y *= scale
			spec.Walls[i].Normal.Z *= scale
			spec.Walls[i].Offset *= scale
		}
		lab, err := config.Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(lab)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	unit, scaled := build(1), build(4)
	lab, err := labs.Testbed()
	if err != nil {
		t.Fatal(err)
	}
	m := lab.InitialModelState()

	hover := moveOn("viperx", geom.V(0.35, 0.52, 0.35))
	pierce := moveOn("viperx", geom.V(0.35, 0.64, 0.30))
	for name, s := range map[string]*Simulator{"unit": unit, "scaled": scaled} {
		if err := s.ValidTrajectory(hover, m); err != nil {
			t.Fatalf("%s: near-wall hover rejected: %v", name, err)
		}
		s.Observe(hover, m)
		err := s.ValidTrajectory(pierce, m)
		if err == nil {
			t.Fatalf("%s: wall-piercing move accepted", name)
		}
		if !strings.Contains(err.Error(), "wall") {
			t.Errorf("%s: violation should name the wall: %v", name, err)
		}
	}
}

// TestBroadphaseTelemetry checks the new obs instruments: prune/keep
// counters accumulate and the in-flight gauge returns to zero.
func TestBroadphaseTelemetry(t *testing.T) {
	lab, err := labs.Testbed()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("sim-test")
	s, err := New(lab, WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	m := lab.InitialModelState()
	if err := s.ValidTrajectory(moveOn("viperx", geom.V(0.32, 0.22, 0.25)), m); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(obs.CounterSimChecks).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.CounterSimChecks, got)
	}
	kept := reg.Counter(obs.CounterSimBroadphaseKept).Value()
	prunedN := reg.Counter(obs.CounterSimBroadphasePruned).Value()
	if prunedN == 0 {
		t.Error("a free move near the grid should prune at least one far solid")
	}
	if kept+prunedN == 0 {
		t.Error("broadphase counters did not accumulate")
	}
	if got := reg.Gauge(obs.GaugeSimChecksInFlight).Value(); got != 0 {
		t.Errorf("in-flight gauge = %d after checks drained, want 0", got)
	}
}
