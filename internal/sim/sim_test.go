package sim

import (
	"strings"
	"testing"

	"repro/internal/action"
	"repro/internal/config"
	"repro/internal/geom"
	"repro/internal/labs"
	"repro/internal/state"
)

func testbedSim(t *testing.T, opts ...Option) (*Simulator, *config.Lab) {
	t.Helper()
	lab, err := labs.Testbed()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(lab, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s, lab
}

func model(lab *config.Lab) state.Snapshot { return lab.InitialModelState() }

func move(target geom.Vec3) action.Command {
	return action.Command{Device: "viperx", Action: action.MoveRobot, Target: target}
}

func TestValidTrajectoryAcceptsFreeMove(t *testing.T) {
	s, lab := testbedSim(t)
	if err := s.ValidTrajectory(move(geom.V(0.32, 0.22, 0.25)), model(lab)); err != nil {
		t.Fatalf("free move rejected: %v", err)
	}
	if s.Checks() != 1 {
		t.Errorf("checks = %d", s.Checks())
	}
}

func TestValidTrajectoryRejectsCuboidCollision(t *testing.T) {
	s, lab := testbedSim(t)
	// Straight into the grid body (the paper's "move UR3e inside the
	// grid" scenario, on the testbed arm).
	err := s.ValidTrajectory(move(geom.V(0.35, 0.25, 0.05)), model(lab))
	if err == nil {
		t.Fatal("grid collision accepted")
	}
	if !strings.Contains(err.Error(), "grid") {
		t.Errorf("violation should name the grid: %v", err)
	}
}

func TestValidTrajectoryRejectsUnplannableTarget(t *testing.T) {
	s, lab := testbedSim(t)
	err := s.ValidTrajectory(move(geom.V(0.1, 0.1, 1.5)), model(lab))
	if err == nil {
		t.Fatal("unplannable target accepted")
	}
	if !strings.Contains(err.Error(), "cannot compute trajectory") {
		t.Errorf("violation should say the trajectory is uncomputable: %v", err)
	}
}

func TestValidTrajectoryRejectsMidPathCollision(t *testing.T) {
	s, lab := testbedSim(t)
	m := model(lab)
	// Park the mirror low south of the centrifuge, then ask for the leg
	// across it — the footnote-2 replay.
	via := move(geom.V(0.63, -0.38, 0.30))
	if err := s.ValidTrajectory(via, m); err != nil {
		t.Fatal(err)
	}
	s.Observe(via, m)
	down := move(geom.V(0.63, -0.38, 0.12))
	if err := s.ValidTrajectory(down, m); err != nil {
		t.Fatal(err)
	}
	s.Observe(down, m)
	leg := move(geom.V(0.63, -0.02, 0.12))
	err := s.ValidTrajectory(leg, m)
	if err == nil {
		t.Fatal("mid-path centrifuge crossing accepted")
	}
	if !strings.Contains(err.Error(), "centrifuge") {
		t.Errorf("violation should name the centrifuge: %v", err)
	}
}

func TestValidTrajectoryDoorAwareness(t *testing.T) {
	s, lab := testbedSim(t)
	m := model(lab)
	inside := action.Command{
		Device: "viperx", Action: action.MoveRobotInside,
		InsideDevice: "dosing_device", TargetName: "dd_safe_height",
	}
	// Reaching inside is geometrically fine for the simulator — door
	// state is rule 1's concern, and the engine checks it first.
	if err := s.ValidTrajectory(inside, m); err != nil {
		t.Fatalf("doorway entry rejected: %v", err)
	}
}

func TestHeldObjectAwareness(t *testing.T) {
	aware, lab := testbedSim(t, WithHeldObjectAware(true))
	blind, _ := testbedSim(t, WithHeldObjectAware(false))
	m := model(lab)
	m.Set(state.Holding("viperx"), state.Bool(true))
	m.Set(state.HeldObject("viperx"), state.Str("vial_1"))
	// Bug-13 geometry: z=0.07 clears the bare gripper, not the vial.
	low := move(geom.V(0.45, 0.10, 0.07))
	if err := blind.ValidTrajectory(low, m); err != nil {
		t.Fatalf("held-blind simulator should accept: %v", err)
	}
	if err := aware.ValidTrajectory(low, m); err == nil {
		t.Fatal("held-aware simulator should reject the vial-crushing move")
	}
}

func TestObserveMirrorsAcceptedMoves(t *testing.T) {
	s, lab := testbedSim(t)
	m := model(lab)
	cmd := move(geom.V(0.32, 0.22, 0.25))
	if err := s.ValidTrajectory(cmd, m); err != nil {
		t.Fatal(err)
	}
	s.Observe(cmd, m)
	tcp, err := s.ArmTCP("viperx")
	if err != nil {
		t.Fatal(err)
	}
	if tcp.Dist(geom.V(0.32, 0.22, 0.25)) > 0.01 {
		t.Errorf("mirror TCP %v, want the move target", tcp)
	}
	// Observing an unplannable command leaves the mirror in place.
	s.Observe(move(geom.V(0.1, 0.1, 1.5)), m)
	tcp2, _ := s.ArmTCP("viperx")
	if tcp2.Dist(tcp) > 1e-9 {
		t.Error("mirror moved on a skipped command")
	}
	if _, err := s.ArmTCP("ghost"); err == nil {
		t.Error("ghost arm reported a TCP")
	}
}

func TestNonMotionCommandsBypass(t *testing.T) {
	s, lab := testbedSim(t)
	if err := s.ValidTrajectory(action.Command{Device: "dosing_device", Action: action.OpenDoor}, model(lab)); err != nil {
		t.Fatal(err)
	}
	if s.Checks() != 0 {
		t.Error("non-motion command counted as a check")
	}
}

func TestGUIRendersFrames(t *testing.T) {
	s, lab := testbedSim(t, WithGUI(320, 240))
	if err := s.ValidTrajectory(move(geom.V(0.32, 0.22, 0.25)), model(lab)); err != nil {
		t.Fatal(err)
	}
	if s.GUIFrames() == 0 {
		t.Fatal("no GUI frames rendered")
	}
	art := s.RenderASCII(80, 24)
	if art == "" {
		t.Fatal("no ASCII rendering")
	}
	if !strings.ContainsAny(art, "o#.") {
		t.Errorf("ASCII scene looks empty:\n%s", art)
	}
	// Headless simulators render nothing.
	headless, lab2 := testbedSim(t)
	_ = lab2
	if headless.GUIFrames() != 0 || headless.RenderASCII(10, 10) != "" {
		t.Error("headless simulator rendered")
	}
}

func TestRasterizerPrimitives(t *testing.T) {
	r := newRasterizer(160, 120)
	r.renderScene(nil, nil)
	if r.Frames() != 1 {
		t.Errorf("frames = %d", r.Frames())
	}
	snap := r.Snapshot()
	if !strings.Contains(snap, "160x120") {
		t.Errorf("snapshot = %q", snap)
	}
	// The platform alone lights pixels.
	if strings.Contains(snap, " 0 lit") {
		t.Error("empty framebuffer after a render")
	}
}

func TestHomeAndSleepTrajectories(t *testing.T) {
	s, lab := testbedSim(t)
	m := model(lab)
	// Move somewhere, then home and sleep — both planned from the mirror
	// without IK (direct joint interpolation) and validated.
	cmd := move(geom.V(0.32, 0.22, 0.25))
	if err := s.ValidTrajectory(cmd, m); err != nil {
		t.Fatal(err)
	}
	s.Observe(cmd, m)
	home := action.Command{Device: "viperx", Action: action.MoveHome}
	if err := s.ValidTrajectory(home, m); err != nil {
		t.Fatalf("homing rejected: %v", err)
	}
	s.Observe(home, m)
	sleep := action.Command{Device: "viperx", Action: action.MoveSleep}
	if err := s.ValidTrajectory(sleep, m); err != nil {
		t.Fatalf("sleep rejected: %v", err)
	}
	// Commands for unknown arms pass through (the simulator only models
	// configured arms).
	ghost := action.Command{Device: "ghost", Action: action.MoveRobot, Target: geom.V(0.1, 0, 0.2)}
	if err := s.ValidTrajectory(ghost, m); err != nil {
		t.Fatal(err)
	}
}
