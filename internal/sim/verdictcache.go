package sim

import (
	"container/list"
	"math"
	"strconv"
	"sync"

	"repro/internal/action"
	"repro/internal/kin"
	"repro/internal/obs"
)

// verdict is one memoized trajectory check outcome: an empty reason is a
// pass, anything else the Violation reason. spec marks verdicts computed
// by a speculative lookahead that no on-path check has consumed yet;
// corr is that speculation's flight-recorder correlation ID, kept so the
// consuming check's record can name the speculative span that produced
// its verdict.
type outcome struct {
	reason string
	spec   bool
	corr   string
}

// verdictEntry is one LRU slot.
type verdictEntry struct {
	key string
	v   outcome
}

// DefaultVerdictCacheCapacity bounds the verdict cache. Verdicts are a
// few dozen bytes, but every deck-epoch bump orphans a whole generation
// of keys, so the bound is what actually reclaims them.
const DefaultVerdictCacheCapacity = 4096

// verdictCache is a bounded LRU of trajectory verdicts. Keys embed the
// deck epoch (see Simulator.verdictKey): entries cached under an earlier
// epoch can never be looked up again, which is how stale verdicts are
// structurally unservable rather than merely flagged. Safe for
// concurrent use.
type verdictCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

func newVerdictCache(capacity int) *verdictCache {
	if capacity <= 0 {
		capacity = DefaultVerdictCacheCapacity
	}
	return &verdictCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached verdict for key. When consume is true a
// speculative verdict is claimed: its spec mark is cleared and reported
// exactly once, so the speculation-hit gauge counts distinct pre-checks
// taken off the critical path.
func (c *verdictCache) get(key string, consume bool) (outcome, bool, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return outcome{}, false, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*verdictEntry)
	wasSpec := e.v.spec
	if consume && wasSpec {
		e.v.spec = false
	}
	return e.v, true, wasSpec
}

// put stores a verdict, evicting the LRU tail past capacity. An existing
// entry is left untouched (first write wins; both writers computed the
// same verdict for the same key).
func (c *verdictCache) put(key string, v outcome, evictions *obs.Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[key]; ok {
		return
	}
	c.items[key] = c.ll.PushFront(&verdictEntry{key: key, v: v})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*verdictEntry).key)
		evictions.Inc()
	}
}

// len returns the number of cached verdicts.
func (c *verdictCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// verdictKey identifies everything a trajectory check reads: the deck
// epoch (standing in for every deck-relevant model variable — doors,
// arm-inside flags, held objects), the command fields the sweep consumes
// (device, action, target, inside-device), and the quantized start
// configuration. Command sequence numbers, durations, and action values
// are deliberately absent: they cannot change the swept volume.
func (s *Simulator) verdictKey(from []float64, cmd action.Command, epoch uint64) string {
	b := make([]byte, 0, 128)
	b = strconv.AppendUint(b, epoch, 10)
	b = append(b, '|')
	b = append(b, cmd.Device...)
	b = append(b, '|')
	b = append(b, cmd.Action...)
	b = append(b, '|')
	b = append(b, cmd.TargetName...)
	b = append(b, '|')
	b = append(b, cmd.InsideDevice...)
	b = append(b, '|')
	b = appendQ(b, cmd.Target.X, kin.TargetQuantum)
	b = appendQ(b, cmd.Target.Y, kin.TargetQuantum)
	b = appendQ(b, cmd.Target.Z, kin.TargetQuantum)
	b = append(b, '|')
	for _, q := range from {
		b = appendQ(b, q, kin.JointQuantum)
	}
	return string(b)
}

// appendQ snaps v to the plan cache's quantization grid and appends it.
func appendQ(b []byte, v, quantum float64) []byte {
	b = append(b, ':')
	return strconv.AppendInt(b, int64(math.Round(v/quantum)), 10)
}
