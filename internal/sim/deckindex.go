// The deck spatial index: the cold sweep path's pre-digested view of the
// deck snapshot. It exists because a cold trajectory check used to pay,
// per check, (a) an allocation-heavy obstacle-list assembly with string
// state-key construction per device, and (b) a per-sample × per-obstacle
// narrow phase. The index precomputes everything that only depends on
// the deck — the solid list in spec order, the state keys the exclusion
// rules read, and a BVH over the solid boxes — and is rebuilt only when
// the deck epoch moves, the same invalidation contract the verdict cache
// keys encode (see verdictcache.go).
package sim

import (
	"time"

	"repro/internal/action"
	"repro/internal/geom"
	"repro/internal/rules"
	"repro/internal/state"
)

// deckIndex is one epoch's immutable snapshot of the deck for the cold
// sweep path. All fields are read-only after build, so checks on
// different arms share one index without locking.
type deckIndex struct {
	epoch uint64
	// solids are the non-sensor device cuboids in spec order — the order
	// the narrow phase must test candidates in for verdict strings to
	// match the brute-force sweep byte for byte.
	solids []rules.NamedBox
	byName map[string]int
	// doorKeys[i] are solid i's door-status keys; insideKeys[armID][i] is
	// the arm-inside key for solid i. Both precomputed because
	// state.MakeKey allocates, and the exclusion mask is consulted on
	// every cold check.
	doorKeys   [][]state.Key
	insideKeys map[string][]state.Key
	bvh        *geom.BVH
}

// buildDeckIndex digests the lab spec into a deckIndex stamped with the
// given epoch. Deck geometry is immutable after compile, so successive
// epochs build identical geometry — the epoch stamp is what lets readers
// prove their index is not from a generation whose cached artifacts the
// model owner has invalidated.
func (s *Simulator) buildDeckIndex(epoch uint64) *deckIndex {
	idx := &deckIndex{
		epoch:  epoch,
		byName: make(map[string]int),
	}
	for _, ds := range s.lab.Spec.Devices {
		if ds.Type == "sensor" {
			continue
		}
		nb := rules.NamedBox{Name: ds.ID, Box: ds.Cuboid.AABB()}
		if ds.Shape == "cylinder" || ds.Shape == "dome" {
			cap := geom.InscribedVerticalCapsule(nb.Box)
			nb.Rounded = &cap
		}
		idx.byName[ds.ID] = len(idx.solids)
		idx.solids = append(idx.solids, nb)
		var doors []state.Key
		for _, door := range s.lab.DeviceDoors(ds.ID) {
			doors = append(doors, state.DoorStatusOf(ds.ID, door))
		}
		idx.doorKeys = append(idx.doorKeys, doors)
	}
	idx.insideKeys = make(map[string][]state.Key, len(s.arms))
	for armID := range s.arms {
		keys := make([]state.Key, len(idx.solids))
		for i, nb := range idx.solids {
			keys[i] = state.ArmInside(armID, nb.Name)
		}
		idx.insideKeys[armID] = keys
	}
	boxes := make([]geom.AABB, len(idx.solids))
	for i := range idx.solids {
		boxes[i] = idx.solids[i].Box
	}
	idx.bvh = geom.NewBVH(boxes)
	return idx
}

// deckIndexFor returns the index for the given deck epoch, building it
// on first use and rebuilding when the epoch has moved on. The fast path
// is one atomic load; rebuilds serialise on indexMu with a double check
// so concurrent arms racing past a bump build at most one index. A check
// that loads the index while another goroutine bumps the epoch is
// harmless: deck geometry is immutable, so every generation's index is
// geometrically identical — the stamp only bounds how long a build is
// served before the deck snapshot is revisited.
func (s *Simulator) deckIndexFor(epoch uint64) *deckIndex {
	if idx := s.index.Load(); idx != nil && idx.epoch == epoch {
		return idx
	}
	s.indexMu.Lock()
	defer s.indexMu.Unlock()
	if idx := s.index.Load(); idx != nil && idx.epoch == epoch {
		return idx
	}
	// Deck geometry is immutable for the simulator's lifetime (build reads
	// only the compiled lab spec and the arm set), so when an index already
	// exists an epoch move only needs a restamp: shallow-copy the old index
	// with the new epoch and share its solids/keys/BVH. Only the first call
	// — or a pooled simulator's first use — pays the real build. The
	// rebuild counter counts true builds, so campaign runs reusing a deck
	// fingerprint report 1 rebuild per pooled simulator, not 1 per
	// scenario.
	if old := s.index.Load(); old != nil {
		idx := *old
		idx.epoch = epoch
		s.index.Store(&idx)
		return &idx
	}
	start := time.Now()
	idx := s.buildDeckIndex(epoch)
	s.index.Store(idx)
	s.cIndexRebuilds.Inc()
	s.hIndexRebuild.Observe(time.Since(start))
	return idx
}

// excludeInto fills ex with the per-check exclusion mask over solids —
// exactly Simulator.obstacles' rules: the device being entered, the
// owner of an inside target, any device the arm is reaching inside of,
// and any open-doored device — using the precomputed keys instead of
// per-call key construction.
func (idx *deckIndex) excludeInto(ex []bool, s *Simulator, cmd action.Command, model state.Snapshot) []bool {
	ex = ex[:0]
	for range idx.solids {
		ex = append(ex, false)
	}
	if cmd.InsideDevice != "" {
		if j, ok := idx.byName[cmd.InsideDevice]; ok {
			ex[j] = true
		}
	}
	if cmd.TargetName != "" && s.lab.LocationIsInside(cmd.TargetName) {
		if owner, ok := s.lab.LocationOwner(cmd.TargetName); ok {
			if j, ok := idx.byName[owner]; ok {
				ex[j] = true
			}
		}
	}
	inside := idx.insideKeys[cmd.Device]
	for j := range idx.solids {
		if ex[j] {
			continue
		}
		if inside != nil && model.GetBool(inside[j]) {
			ex[j] = true
			continue
		}
		for _, k := range idx.doorKeys[j] {
			if model.GetBool(k) {
				ex[j] = true
				break
			}
		}
	}
	return ex
}
