// Package sim implements the paper's Extended Simulator (Section III,
// Fig. 3): the vendor arm simulator (URSim) augmented with 3D cuboid
// models of every deck device, continuously polling the robot arm's
// trajectory and checking it against the cuboids, the walls, and the
// mounting platform.
//
// The simulator maintains its own mirror of each arm's joint state: it
// plans the same trajectory the arm would execute and sweeps the arm's
// full collision volume along it — which is what catches mid-path
// collisions that the target-only check misses (the paper's footnote-2
// scenario), and what rejects targets the arm cannot plan to at all.
//
// The hot path is organised for throughput. Locking is sharded per arm:
// each mirror arm owns its joint state and scratch buffers under its own
// mutex, so trajectory checks for different arms run concurrently (the
// lab configuration is immutable and the model snapshot is caller-owned,
// so the check itself takes no global lock). Cold checks validate the
// whole trajectory in one batched pass: the samples' capsules are laid
// out in SoA form (kin.SweepBatch), per-link swept AABBs are queried
// against a deck spatial index (deckindex.go) instead of testing every
// solid, and a conservative early-out skips the narrow phase entirely
// for samples whose bound clears every broadphase survivor. The sampling
// fills reusable scratch, so a check performs no per-sample allocation.
//
// The paper reports the Extended Simulator's ~2 s (112%) overhead comes
// almost entirely from its GUI running in a virtual machine. WithGUI
// reproduces that cost class honestly: every collision check renders the
// scene to an offscreen framebuffer with a software rasteriser instead of
// sleeping. GUI rendering is serialised across arms (one framebuffer) and
// disables broadphase pruning so every frame shows the full deck.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/action"
	"repro/internal/config"
	"repro/internal/geom"
	"repro/internal/kin"
	"repro/internal/obs"
	"repro/internal/obs/recorder"
	otrace "repro/internal/obs/trace"
	"repro/internal/rules"
	"repro/internal/state"
)

// sweepStep is the maximum end-effector travel between consecutive sweep
// samples (m); shared by the broadphase prepass and the narrow phase so
// both visit exactly the same sample set.
const sweepStep = 0.02

// Violation reports why a trajectory is invalid.
type Violation struct {
	Cmd    action.Command
	Reason string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("sim: invalid trajectory for %s: %s", v.Cmd, v.Reason)
}

// Option configures the simulator.
type Option func(*Simulator)

// WithGUI enables the offscreen GUI rendering on every check, modelling
// the paper's GUI-in-a-VM deployment. Width/height are the framebuffer
// dimensions.
func WithGUI(width, height int) Option {
	return func(s *Simulator) {
		s.gui = newRasterizer(width, height)
	}
}

// WithHeldObjectAware makes the swept volume include a held object
// (matching the modified RABIT generation).
func WithHeldObjectAware(aware bool) Option {
	return func(s *Simulator) { s.heldAware = aware }
}

// WithBroadphase enables or disables broadphase pruning (on by
// default; with it on, cold sweeps run the batched spatial-index path).
// Disabling it forces the narrow phase to test every solid at every
// sample — the brute-force reference behaviour the verdict-equivalence
// property tests compare the indexed path against.
func WithBroadphase(enabled bool) Option {
	return func(s *Simulator) { s.broadphase = enabled }
}

// WithLegacySweep routes cold sweeps through the pre-index pipeline:
// whole-trajectory broadphase pruning plus a per-sample narrow phase
// using the iterative golden-section segment-box distance
// (geom.SegmentAABBDistRef). Retained as the honest before-measurement
// for the cold-path benchmark — the exact closed-form distance also sped
// up the brute path, so comparing against it would understate the win.
func WithLegacySweep(enabled bool) Option {
	return func(s *Simulator) { s.legacySweep = enabled }
}

// WithObserver publishes simulator telemetry (collision-check counter,
// broadphase prune/keep counters, in-flight check gauge, GUI frame gauge,
// and the motion fast path's cache/epoch/speculation instruments) into a
// registry — typically the system-wide one.
func WithObserver(reg *obs.Registry) Option {
	return func(s *Simulator) {
		s.reg = reg
		s.cChecks = reg.Counter(obs.CounterSimChecks)
		s.cPruned = reg.Counter(obs.CounterSimBroadphasePruned)
		s.cKept = reg.Counter(obs.CounterSimBroadphaseKept)
		s.cIndexCandidates = reg.Counter(obs.CounterSimIndexCandidates)
		s.cIndexRebuilds = reg.Counter(obs.CounterSimIndexRebuilds)
		s.hIndexRebuild = reg.Histogram(obs.HistSimIndexRebuild)
		s.gInFlight = reg.Gauge(obs.GaugeSimChecksInFlight)
		s.gFrames = reg.Gauge(obs.GaugeGUIFrames)
		s.cVerdictHits = reg.Counter(obs.CounterVerdictCacheHits)
		s.cVerdictMisses = reg.Counter(obs.CounterVerdictCacheMisses)
		s.cVerdictEvictions = reg.Counter(obs.CounterVerdictCacheEvictions)
		s.cEpochBumps = reg.Counter(obs.CounterDeckEpochBumps)
		s.gSpecHits = reg.Gauge(obs.GaugeSpeculationHits)
	}
}

// WithMotionCache enables the motion-planning fast path: IK plans served
// from a plan cache and sweep verdicts from an epoch-keyed verdict
// cache. Off by default, because cached verdicts are only sound under
// the epoch contract: whoever owns the model snapshots MUST call
// BumpDeckEpoch whenever a deck-relevant variable (state.Key.
// DeckRelevant) changes, atomically with publishing the changed model.
// The engine honors that contract; bare simulators driven with ad-hoc
// snapshots generally do not. The GUI path always bypasses the caches —
// it exists to render every check, not to skip them.
func WithMotionCache(enabled bool) Option {
	return func(s *Simulator) { s.cacheOn = enabled }
}

// WithSharedPlanCache makes the simulator memoize IK plans in pc instead
// of a private cache, so several simulators (or other planners) pool
// solutions. Keys embed the chain identity, so arms never cross-read.
func WithSharedPlanCache(pc *kin.PlanCache) Option {
	return func(s *Simulator) { s.planCache = pc }
}

// WithTracer attaches the causal tracer: traced checks emit kin.plan,
// sim.sweep, and sim.verdict child spans under the parent span the
// engine passes in. Must be the same tracer the engine and interceptor
// share, or child spans land in traces nobody retains.
func WithTracer(t *otrace.Tracer) Option {
	return func(s *Simulator) { s.tracer = t }
}

// WithArmProfiles supplies prebuilt kinematic profiles by arm ID,
// skipping NewProfile's canonical-pose IK solves for matching arms.
// Profiles are immutable after construction, so one set may back any
// number of simulators — an engine pool builds them once per deck
// instead of once per pooled stack. Supplied profiles must match the
// lab's arm models and mounting poses.
func WithArmProfiles(profiles map[string]*kin.Profile) Option {
	return func(s *Simulator) { s.sharedProfiles = profiles }
}

// mirrorArm is the simulator's model of one arm. Each arm carries its own
// lock and scratch buffers, so checks on different arms never contend.
type mirrorArm struct {
	mu      sync.Mutex
	profile *kin.Profile
	base    geom.Vec3
	joints  []float64
	drop    float64
	radius  float64
	// Scratch buffers reused across checks (guarded by mu): the sampling
	// workspace, the combined link+tip capsule slice, and the broadphase
	// survivor lists.
	sweep kin.Sweep
	caps  []geom.Capsule
	kept  []rules.NamedBox
	walls []geom.Plane
	// Batched sweep scratch: the SoA sample layout, per-sample tip-start
	// indices, and the indexed path's exclusion mask, candidate lists,
	// and per-sample shortlist.
	batch      kin.SweepBatch
	sampleTip  []int
	exclude    []bool
	cand       []int32
	candSeen   []bool
	keptIdx    []int
	sampleCand []int
}

// Simulator is the Extended Simulator. All fields other than the per-arm
// mirrors and the GUI framebuffer are immutable after New, so methods on
// different arms proceed concurrently.
type Simulator struct {
	lab        *config.Lab
	arms       map[string]*mirrorArm // immutable map; values self-locked
	heldAware  bool
	broadphase bool
	// legacySweep routes cold sweeps through the pre-index pipeline (see
	// WithLegacySweep).
	legacySweep bool
	// index is the published deck spatial index; indexMu serialises
	// rebuilds when the deck epoch moves (see deckindex.go).
	index   atomic.Pointer[deckIndex]
	indexMu sync.Mutex
	// checks counts ValidTrajectory invocations (for tests/benches).
	checks atomic.Int64
	// guiMu serialises rendering into the single shared framebuffer.
	guiMu sync.Mutex
	gui   *rasterizer
	// Motion-planning fast path (WithMotionCache): memoized IK plans,
	// epoch-keyed sweep verdicts, and the deck epoch itself. epoch is
	// bumped by the model owner on every deck-relevant change; verdict
	// keys embed it, so a bump orphans every earlier verdict.
	cacheOn   bool
	planCache *kin.PlanCache
	verdicts  *verdictCache
	epoch     atomic.Uint64
	specHits  atomic.Int64
	// tracer emits kin/sim child spans under engine-supplied parents
	// (nil = tracing off; every use is nil-guarded).
	tracer *otrace.Tracer
	// sharedProfiles, when set, supplies prebuilt arm profiles by ID
	// (WithArmProfiles); arms not present fall back to NewProfile.
	sharedProfiles map[string]*kin.Profile
	// Telemetry instruments, resolved once by WithObserver (nil-safe
	// otherwise).
	reg               *obs.Registry
	cChecks           *obs.Counter
	cPruned           *obs.Counter
	cKept             *obs.Counter
	cIndexCandidates  *obs.Counter
	cIndexRebuilds    *obs.Counter
	hIndexRebuild     *obs.Histogram
	gInFlight         *obs.Gauge
	gFrames           *obs.Gauge
	cVerdictHits      *obs.Counter
	cVerdictMisses    *obs.Counter
	cVerdictEvictions *obs.Counter
	cEpochBumps       *obs.Counter
	gSpecHits         *obs.Gauge
}

// New builds a simulator mirroring the given lab configuration.
func New(lab *config.Lab, opts ...Option) (*Simulator, error) {
	s := &Simulator{
		lab:        lab,
		arms:       make(map[string]*mirrorArm),
		heldAware:  true,
		broadphase: true,
	}
	for _, o := range opts {
		o(s)
	}
	for _, as := range lab.Spec.Arms {
		p := s.sharedProfiles[as.ID]
		if p == nil {
			model, err := kin.ParseModel(as.Model)
			if err != nil {
				return nil, fmt.Errorf("sim: arm %s: %w", as.ID, err)
			}
			p, err = kin.NewProfile(model, geom.PoseAt(as.Base.V3()))
			if err != nil {
				return nil, fmt.Errorf("sim: arm %s: %w", as.ID, err)
			}
		}
		s.arms[as.ID] = &mirrorArm{
			profile: p,
			base:    as.Base.V3(),
			joints:  append([]float64(nil), p.Home...),
			drop:    as.Gripper.FingerDrop,
			radius:  as.Gripper.FingerRadius,
		}
	}
	if s.cacheOn {
		if s.planCache == nil {
			s.planCache = kin.NewPlanCache(0)
		}
		s.verdicts = newVerdictCache(0)
	}
	if s.reg != nil && s.planCache != nil {
		s.planCache.SetCounters(
			s.reg.Counter(obs.CounterPlanCacheHits),
			s.reg.Counter(obs.CounterPlanCacheMisses),
			s.reg.Counter(obs.CounterPlanCacheEvictions),
			s.reg.Counter(obs.CounterPlanCacheWarmStarts))
	}
	return s, nil
}

// PlanCache returns the simulator's plan cache (nil when the motion
// cache is disabled and none was shared in).
func (s *Simulator) PlanCache() *kin.PlanCache { return s.planCache }

// DeckEpoch returns the current deck epoch. Callers that pair it with a
// model snapshot must read both under the same lock that serialises
// BumpDeckEpoch, or the pairing races.
func (s *Simulator) DeckEpoch() uint64 { return s.epoch.Load() }

// BumpDeckEpoch invalidates every cached verdict by advancing the deck
// epoch. The model owner calls it — atomically with publishing the
// changed model — whenever a deck-relevant variable changes.
func (s *Simulator) BumpDeckEpoch() {
	s.epoch.Add(1)
	s.cEpochBumps.Inc()
}

// Reset re-homes every mirror arm. Mirror joints are the one piece of
// per-run state the simulator accumulates (Observe advances them with
// each motion command), so a pooled simulator must re-home between
// scenarios or the next run starts from wherever the last one parked the
// arms. Not safe to call concurrently with checks.
func (s *Simulator) Reset() {
	for _, m := range s.arms {
		m.mu.Lock()
		m.joints = append(m.joints[:0], m.profile.Home...)
		m.mu.Unlock()
	}
}

// SpeculationHits reports how many on-path checks were answered by a
// verdict a speculative lookahead had already computed.
func (s *Simulator) SpeculationHits() int64 { return s.specHits.Load() }

// SetBroadphase toggles the broadphase at runtime — for property tests
// comparing pruned and unpruned verdicts over an already-wired stack. Not
// safe to call concurrently with checks.
func (s *Simulator) SetBroadphase(enabled bool) { s.broadphase = enabled }

// Checks returns how many trajectory validations have run.
func (s *Simulator) Checks() int {
	return int(s.checks.Load())
}

// deckTarget resolves a command target into the deck frame.
func (s *Simulator) deckTarget(m *mirrorArm, cmd action.Command) (geom.Vec3, error) {
	if cmd.TargetName != "" {
		p, ok := s.lab.LocationPos(cmd.Device, cmd.TargetName)
		if !ok {
			return geom.Vec3{}, fmt.Errorf("unknown location %q", cmd.TargetName)
		}
		return p.Add(m.base), nil
	}
	return cmd.Target.Add(m.base), nil
}

// planned computes the trajectory a motion command would execute in the
// mirror, or an error when no trajectory exists. The caller holds m.mu.
func (s *Simulator) planned(m *mirrorArm, cmd action.Command) (*kin.Trajectory, error) {
	return s.plannedFrom(m, m.joints, cmd)
}

// plannedFrom is planned starting from an explicit configuration — the
// speculative lookahead plans the next command from the predicted
// post-move configuration before the mirror has advanced. IK solves go
// through the plan cache when the fast path is on. The caller holds
// m.mu.
func (s *Simulator) plannedFrom(m *mirrorArm, from []float64, cmd action.Command) (*kin.Trajectory, error) {
	switch cmd.Action {
	case action.MoveHome:
		return &kin.Trajectory{Chain: m.profile.Chain, From: from, To: m.profile.Home}, nil
	case action.MoveSleep:
		return &kin.Trajectory{Chain: m.profile.Chain, From: from, To: m.profile.Sleep}, nil
	default:
		target, err := s.deckTarget(m, cmd)
		if err != nil {
			return nil, err
		}
		if s.cacheOn && s.gui == nil {
			return s.planCache.Plan(m.profile.Chain, from, target, kin.DefaultIKOptions())
		}
		return m.profile.Chain.PlanJointMove(from, target, kin.DefaultIKOptions())
	}
}

// obstacles assembles the deck cuboids visible to a move: every device
// box except (a) the device being entered (its door is guarded by rule 1)
// and (b) any device the arm is currently reaching inside of (leaving it
// must not read as a collision), in deck coordinates.
func (s *Simulator) obstacles(cmd action.Command, model state.Snapshot) []rules.NamedBox {
	var out []rules.NamedBox
	excluded := map[string]bool{}
	if cmd.InsideDevice != "" {
		excluded[cmd.InsideDevice] = true
	}
	if cmd.TargetName != "" && s.lab.LocationIsInside(cmd.TargetName) {
		if owner, ok := s.lab.LocationOwner(cmd.TargetName); ok {
			excluded[owner] = true
		}
	}
	for _, ds := range s.lab.Spec.Devices {
		if model.GetBool(state.ArmInside(cmd.Device, ds.ID)) {
			excluded[ds.ID] = true
		}
		// Open-doored devices may be legitimately reached into.
		for _, door := range s.lab.DeviceDoors(ds.ID) {
			if model.GetBool(state.DoorStatusOf(ds.ID, door)) {
				excluded[ds.ID] = true
				break
			}
		}
	}
	for _, ds := range s.lab.Spec.Devices {
		if excluded[ds.ID] || ds.Type == "sensor" {
			continue
		}
		nb := rules.NamedBox{Name: ds.ID, Box: ds.Cuboid.AABB()}
		if ds.Shape == "cylinder" || ds.Shape == "dome" {
			cap := geom.InscribedVerticalCapsule(nb.Box)
			nb.Rounded = &cap
		}
		out = append(out, nb)
	}
	return out
}

// heldCapsuleFor returns the held object capsule hanging below the TCP,
// if the model believes the arm holds something and the simulator is
// held-object aware.
func (s *Simulator) heldCapsuleFor(cmd action.Command, model state.Snapshot, tcp geom.Vec3) (geom.Capsule, bool) {
	if !s.heldAware {
		return geom.Capsule{}, false
	}
	if !model.GetBool(state.Holding(cmd.Device)) {
		return geom.Capsule{}, false
	}
	obj := model.GetString(state.HeldObject(cmd.Device))
	if obj == "" {
		return geom.Capsule{}, false
	}
	og, ok := s.lab.ObjectGeometry(obj)
	if !ok {
		return geom.Capsule{}, false
	}
	hang := og.CarriedHang - og.Radius
	if hang < 0 {
		hang = 0
	}
	return geom.NewCapsule(tcp, tcp.Add(geom.V(0, 0, -hang)), og.Radius), true
}

// armCapsulesInto appends the arm's full collision volume at trajectory
// parameter t to dst — link capsules followed by the gripper tip capsule
// and, when held-object aware, the held object capsule — and returns it
// plus the offset within the appended run where the tip capsules start.
// The caller holds m.mu.
func (s *Simulator) armCapsulesInto(m *mirrorArm, tr *kin.Trajectory, t float64,
	cmd action.Command, model state.Snapshot, dst []geom.Capsule) ([]geom.Capsule, int, error) {
	start := len(dst)
	dst, err := m.sweep.CapsulesAtInto(tr, t, dst)
	if err != nil {
		return dst, 0, err
	}
	// The last link capsule is the end-effector stub: its endpoint is the
	// TCP, sparing the extra forward-kinematics pass per sample.
	tcp := dst[len(dst)-1].Seg.B
	tipStart := len(dst) - start
	dst = append(dst, geom.NewCapsule(tcp, tcp.Add(geom.V(0, 0, -m.drop)), m.radius))
	if held, ok := s.heldCapsuleFor(cmd, model, tcp); ok {
		dst = append(dst, held)
	}
	return dst, tipStart, nil
}

// armCapsulesAt is armCapsulesInto into m.caps — the per-sample scratch
// the unbatched (brute/GUI) path reuses. The slice is valid until the
// next call; the caller holds m.mu.
func (s *Simulator) armCapsulesAt(m *mirrorArm, tr *kin.Trajectory, t float64,
	cmd action.Command, model state.Snapshot) ([]geom.Capsule, int, error) {
	caps, tipStart, err := s.armCapsulesInto(m, tr, t, cmd, model, m.caps[:0])
	m.caps = caps[:0]
	if err != nil {
		return nil, 0, err
	}
	return caps, tipStart, nil
}

// fillBatch runs the forward-kinematics sweep once, laying every
// sample's capsules out in m.batch (SoA form with per-sample, per-lane,
// and whole-trajectory bounds) and the tip-start offsets in m.sampleTip.
// The caller holds m.mu.
func (s *Simulator) fillBatch(m *mirrorArm, tr *kin.Trajectory,
	cmd action.Command, model state.Snapshot) error {
	n := tr.SampleCount(sweepStep)
	m.batch.Reset()
	m.sampleTip = m.sampleTip[:0]
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		caps, tipStart, err := s.armCapsulesInto(m, tr, t, cmd, model, m.batch.Caps)
		if err != nil {
			return fmt.Errorf("sweep capsules at t=%.3f: %v", t, err)
		}
		m.batch.Caps = caps
		m.batch.EndSample()
		m.sampleTip = append(m.sampleTip, tipStart)
	}
	return nil
}

// ValidTrajectory validates one robot motion command against the mirror:
// plan the move, sweep the full arm volume, and reject on any collision
// with the deck cuboids or the platform. The model snapshot supplies
// RABIT's current beliefs (held object, door states); the caller must not
// mutate it during the call. Checks for different arms run concurrently;
// checks for the same arm serialise on that arm's mirror.
func (s *Simulator) ValidTrajectory(cmd action.Command, model state.Snapshot) error {
	_, err := s.ValidTrajectoryProv(cmd, model)
	return err
}

// ValidTrajectoryProv is ValidTrajectory plus the verdict's provenance
// for the flight recorder: whether the answer was solved cold, served
// from the epoch-keyed verdict cache, or pre-computed by a speculative
// lookahead (in which case the provenance names the speculation's
// correlation ID). The verdict itself is byte-identical to
// ValidTrajectory's — provenance is observation, never behaviour.
func (s *Simulator) ValidTrajectoryProv(cmd action.Command, model state.Snapshot) (recorder.Verdict, error) {
	return s.validTraced(cmd, model, otrace.SpanContext{})
}

// ValidTrajectoryTraced is ValidTrajectoryProv under a causal parent
// span: the planner and sweep emit kin.plan / sim.sweep / sim.verdict
// child spans beneath it (when WithTracer is set). The verdict is
// byte-identical to ValidTrajectory's — tracing is observation, never
// behaviour.
func (s *Simulator) ValidTrajectoryTraced(cmd action.Command, model state.Snapshot, parent otrace.SpanContext) (recorder.Verdict, error) {
	return s.validTraced(cmd, model, parent)
}

func (s *Simulator) validTraced(cmd action.Command, model state.Snapshot, parent otrace.SpanContext) (recorder.Verdict, error) {
	if !cmd.Action.IsRobotMotion() {
		return recorder.Verdict{}, nil
	}
	s.checks.Add(1)
	s.cChecks.Inc()
	s.gInFlight.Add(1)
	defer s.gInFlight.Add(-1)
	if s.gui != nil {
		defer func() {
			s.guiMu.Lock()
			s.gFrames.Set(int64(s.gui.Frames()))
			s.guiMu.Unlock()
		}()
	}
	m, ok := s.arms[cmd.Device]
	if !ok {
		return recorder.Verdict{}, nil // the simulator only models configured arms
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.cacheOn && s.gui == nil {
		return s.cachedVerdict(m, m.joints, cmd, model, s.epoch.Load(), false, "", parent)
	}
	err := s.sweepValidate(m, m.joints, cmd, model, parent)
	s.verdictSpan(parent, recorder.SourceColdSolve, err)
	return recorder.Verdict{Source: recorder.SourceColdSolve, EpochAtValidation: s.epoch.Load()}, err
}

// verdictSpan emits the sim.verdict child span naming where a verdict
// came from. Free when tracing is off or the parent is unbound.
func (s *Simulator) verdictSpan(parent otrace.SpanContext, source string, err error) {
	if s.tracer == nil || !parent.Valid() {
		return
	}
	sp := s.tracer.StartSpan(parent, "sim.verdict")
	sp.SetAttr("source", source)
	if err != nil {
		sp.SetError(err.Error())
	}
	sp.End()
}

// cachedVerdict answers a check from the verdict cache when possible and
// runs (then memoizes) the sweep otherwise. epoch must have been read
// under the same lock that made model current — the entry is stored for
// exactly that (model, epoch) pairing, and a concurrent bump merely
// strands it under a key no future lookup can form. specCorr tags a
// speculative caller's stored verdict with its correlation ID. The
// caller holds m.mu.
func (s *Simulator) cachedVerdict(m *mirrorArm, from []float64, cmd action.Command,
	model state.Snapshot, epoch uint64, speculative bool, specCorr string,
	parent otrace.SpanContext) (recorder.Verdict, error) {
	key := s.verdictKey(from, cmd, epoch)
	v, ok, wasSpec := s.verdicts.get(key, !speculative)
	if ok {
		prov := recorder.Verdict{Source: recorder.SourceCacheHit, EpochAtValidation: epoch}
		if !speculative {
			s.cVerdictHits.Inc()
			if wasSpec {
				s.gSpecHits.Set(s.specHits.Add(1))
				prov.Source = recorder.SourceSpeculative
				prov.SpecCorr = v.corr
			}
		}
		var err error
		if v.reason != "" {
			err = &Violation{Cmd: cmd, Reason: v.reason}
		}
		s.verdictSpan(parent, prov.Source, err)
		return prov, err
	}
	if !speculative {
		s.cVerdictMisses.Inc()
	}
	err := s.sweepValidate(m, from, cmd, model, parent)
	reason := ""
	if v, ok := err.(*Violation); ok {
		reason = v.Reason
	}
	s.verdicts.put(key, outcome{reason: reason, spec: speculative, corr: specCorr}, s.cVerdictEvictions)
	s.verdictSpan(parent, recorder.SourceColdSolve, err)
	return recorder.Verdict{Source: recorder.SourceColdSolve, EpochAtValidation: epoch}, err
}

// sweepValidate plans cmd from the given configuration and runs the full
// swept-volume check against the model's deck, emitting kin.plan and
// sim.sweep child spans under a valid parent. The caller holds m.mu.
func (s *Simulator) sweepValidate(m *mirrorArm, from []float64, cmd action.Command,
	model state.Snapshot, parent otrace.SpanContext) error {
	if s.tracer == nil || !parent.Valid() {
		tr, err := s.plannedFrom(m, from, cmd)
		if err != nil {
			// The arm cannot plan this move at all. Whatever the real
			// controller does (raise, halt, or silently skip), the
			// experiment's intent cannot be executed — alert.
			return &Violation{Cmd: cmd, Reason: fmt.Sprintf("cannot compute trajectory: %v", err)}
		}
		return s.sweepCheck(m, tr, cmd, model)
	}
	planStart := time.Now()
	tr, err := s.plannedFrom(m, from, cmd)
	planEnd := time.Now()
	ps := s.tracer.StartSpanAt(parent, "kin.plan", planStart)
	if err != nil {
		ps.SetError(err.Error())
	}
	ps.EndAt(planEnd)
	if err != nil {
		return &Violation{Cmd: cmd, Reason: fmt.Sprintf("cannot compute trajectory: %v", err)}
	}
	serr := s.sweepCheck(m, tr, cmd, model)
	// The sweep span starts at the planner's end stamp — one shared clock
	// read per boundary, like the engine's stage histograms.
	ss := s.tracer.StartSpanAt(parent, "sim.sweep", planEnd)
	if serr != nil {
		ss.SetError(serr.Error())
	}
	ss.End()
	return serr
}

// sweepCheck runs the full swept-volume check of a planned trajectory
// against the model's deck. The caller holds m.mu. Three implementations
// share one contract — identical verdicts with byte-identical violation
// strings (the equivalence property tests pin this):
//
//   - indexed (the default): one batched forward-kinematics pass into SoA
//     scratch, swept-AABB queries against the deck spatial index, and a
//     conservative per-sample early-out;
//   - classic scan (broadphase off, or under the GUI, which renders every
//     sample): per-sample brute force over the full deck — the oracle the
//     property tests compare the index against;
//   - legacy (WithLegacySweep): the pre-index broadphase prepass with the
//     iterative narrow-phase predicate, retained as the honest
//     before-measurement for the cold benchmark.
func (s *Simulator) sweepCheck(m *mirrorArm, tr *kin.Trajectory, cmd action.Command, model state.Snapshot) error {
	if s.broadphase && s.gui == nil && !s.legacySweep {
		return s.sweepCheckIndexed(m, tr, cmd, model)
	}
	return s.sweepCheckClassic(m, tr, cmd, model)
}

// sweepCheckIndexed is the batched cold path. Everything it skips is
// provably unable to produce a violation: sample and lane bounds enclose
// their capsules (radius included), solids outside every queried bound
// cannot intersect any capsule, and a sample whose bounds clear every
// surviving candidate, wall, and the floor needs no narrow phase at all.
// Within a tested sample the check order (floor → walls → obstacles in
// spec order, capsule-major) matches the classic scan, so the first
// violation found — and its reason string — is identical.
func (s *Simulator) sweepCheckIndexed(m *mirrorArm, tr *kin.Trajectory, cmd action.Command, model state.Snapshot) error {
	idx := s.deckIndexFor(s.epoch.Load())
	if err := s.fillBatch(m, tr, cmd, model); err != nil {
		return &Violation{Cmd: cmd, Reason: err.Error()}
	}
	b := &m.batch
	bounds := b.Bounds()

	floor := geom.PlaneFromPointNormal(geom.V(0, 0, s.lab.Spec.FloorZ), geom.V(0, 0, 1))
	m.walls = m.walls[:0]
	for _, ws := range s.lab.Spec.Walls {
		// Normalising a configured wall normal must rescale the offset by
		// the same factor, or the plane silently shifts (the same plane
		// algebra PlaneFromPointNormal applies).
		m.walls = append(m.walls, geom.PlaneFromNormalOffset(ws.Normal.V3(), ws.Offset))
	}
	pruned := 0
	walls := m.walls[:0]
	for _, w := range m.walls {
		if w.MinSignedDistAABB(bounds) < 0 {
			walls = append(walls, w)
		} else {
			pruned++
		}
	}
	checkFloor := floor.MinSignedDistAABB(bounds) < 0
	if !checkFloor {
		pruned++
	}

	// Swept-AABB candidates from the index: one query per lane when the
	// batch is uniform (each lane's bound encloses that capsule at every
	// sample — far tighter than the whole-trajectory box), else one query
	// with the whole bound.
	m.exclude = idx.excludeInto(m.exclude, s, cmd, model)
	m.cand = m.cand[:0]
	if b.Uniform() {
		for l := 0; l < b.Lanes(); l++ {
			m.cand = idx.bvh.Query(b.LaneBounds(l), m.cand)
		}
	} else {
		m.cand = idx.bvh.Query(bounds, m.cand)
	}
	s.cIndexCandidates.Add(int64(len(m.cand)))
	if cap(m.candSeen) < len(idx.solids) {
		m.candSeen = make([]bool, len(idx.solids))
	}
	m.candSeen = m.candSeen[:len(idx.solids)]
	for j := range m.candSeen {
		m.candSeen[j] = false
	}
	for _, j := range m.cand {
		m.candSeen[j] = true
	}
	// Survivors in spec order — the narrow phase must visit obstacles in
	// the order the classic scan does for verdict strings to match.
	eligible := 0
	m.keptIdx = m.keptIdx[:0]
	for j := range idx.solids {
		if m.exclude[j] {
			continue
		}
		eligible++
		if m.candSeen[j] {
			m.keptIdx = append(m.keptIdx, j)
		}
	}
	pruned += eligible - len(m.keptIdx)
	s.cPruned.Add(int64(pruned))
	s.cKept.Add(int64(len(m.keptIdx) + len(walls)))

	n := b.Samples()
	for i := 0; i < n; i++ {
		sb := b.SampleBounds(i)
		m.sampleCand = m.sampleCand[:0]
		for _, j := range m.keptIdx {
			if idx.solids[j].Box.Intersects(sb) {
				m.sampleCand = append(m.sampleCand, j)
			}
		}
		anyWall := false
		for _, w := range walls {
			if w.MinSignedDistAABB(sb) < 0 {
				anyWall = true
				break
			}
		}
		doFloor := checkFloor && floor.MinSignedDistAABB(sb) < 0
		if len(m.sampleCand) == 0 && !anyWall && !doFloor {
			continue
		}
		t := float64(i) / float64(n-1)
		caps := b.Sample(i)
		if doFloor {
			// Tip capsules (fingers + held object) are additionally
			// checked against the platform; link capsules are not — the
			// base column legitimately meets it.
			for _, c := range caps[m.sampleTip[i]:] {
				if geom.CapsulePlanePenetrates(c, floor) {
					return &Violation{Cmd: cmd, Reason: fmt.Sprintf("trajectory dips below the platform at t=%.2f", t)}
				}
			}
		}
		if anyWall {
			for _, c := range caps {
				for _, wall := range walls {
					if geom.CapsulePlanePenetrates(c, wall) {
						return &Violation{Cmd: cmd, Reason: fmt.Sprintf("trajectory punches into a lab wall at t=%.2f", t)}
					}
				}
			}
		}
		for _, c := range caps {
			for _, j := range m.sampleCand {
				if idx.solids[j].IntersectsCapsule(c) {
					return &Violation{Cmd: cmd, Reason: fmt.Sprintf("trajectory collides with %s at t=%.2f", idx.solids[j].Name, t)}
				}
			}
		}
	}
	return nil
}

// legacyIntersectsCapsule is the pre-index narrow-phase predicate: the
// iterative golden-section segment–box distance instead of the exact
// closed form. Kept only so WithLegacySweep measures the old cost
// honestly.
func legacyIntersectsCapsule(nb rules.NamedBox, c geom.Capsule) bool {
	if nb.Rounded != nil {
		return geom.CapsuleCapsuleIntersect(c, *nb.Rounded)
	}
	return geom.SegmentAABBDistRef(c.Seg, nb.Box) <= c.Radius
}

// sweepCheckClassic is the unindexed sweep: the per-sample brute scan the
// GUI and the equivalence property tests drive, plus the legacy
// broadphase prepass. The caller holds m.mu.
func (s *Simulator) sweepCheckClassic(m *mirrorArm, tr *kin.Trajectory, cmd action.Command, model state.Snapshot) error {
	obstacles := s.obstacles(cmd, model)
	floor := geom.PlaneFromPointNormal(geom.V(0, 0, s.lab.Spec.FloorZ), geom.V(0, 0, 1))
	m.walls = m.walls[:0]
	for _, ws := range s.lab.Spec.Walls {
		// See sweepCheckIndexed on the offset rescale.
		m.walls = append(m.walls, geom.PlaneFromNormalOffset(ws.Normal.V3(), ws.Offset))
	}
	walls := m.walls
	checkFloor := true
	cached := false
	hit := rules.NamedBox.IntersectsCapsule
	if s.legacySweep {
		hit = legacyIntersectsCapsule
	}

	// Broadphase: prune every solid and plane the swept volume cannot
	// touch, so the narrow phase only tests real candidates. Skipped under
	// the GUI, which wants the full deck in every rendered frame.
	if s.broadphase && s.gui == nil {
		cached = true
		if err := s.fillBatch(m, tr, cmd, model); err != nil {
			return &Violation{Cmd: cmd, Reason: err.Error()}
		}
		bounds := m.batch.Bounds()
		pruned := 0
		m.kept = m.kept[:0]
		for _, nb := range obstacles {
			if nb.Box.Intersects(bounds) {
				m.kept = append(m.kept, nb)
			} else {
				pruned++
			}
		}
		obstacles = m.kept
		keptWalls := walls[:0]
		for _, w := range walls {
			if w.MinSignedDistAABB(bounds) < 0 {
				keptWalls = append(keptWalls, w)
			} else {
				pruned++
			}
		}
		walls = keptWalls
		if floor.MinSignedDistAABB(bounds) >= 0 {
			checkFloor = false
			pruned++
		}
		s.cPruned.Add(int64(pruned))
		s.cKept.Add(int64(len(obstacles) + len(walls)))
	}

	n := tr.SampleCount(sweepStep)
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		var caps []geom.Capsule
		var tipStart int
		if cached {
			caps = m.batch.Sample(i)
			tipStart = m.sampleTip[i]
		} else {
			var err error
			caps, tipStart, err = s.armCapsulesAt(m, tr, t, cmd, model)
			if err != nil {
				return &Violation{Cmd: cmd, Reason: fmt.Sprintf("sweep capsules at t=%.3f: %v", t, err)}
			}
		}
		if s.gui != nil {
			s.guiMu.Lock()
			s.gui.renderScene(obstacles, caps)
			s.guiMu.Unlock()
		}
		if checkFloor {
			// Tip capsules (fingers + held object) are additionally
			// checked against the platform; link capsules are not — the
			// base column legitimately meets it.
			for _, c := range caps[tipStart:] {
				if geom.CapsulePlanePenetrates(c, floor) {
					return &Violation{Cmd: cmd, Reason: fmt.Sprintf("trajectory dips below the platform at t=%.2f", t)}
				}
			}
		}
		for _, c := range caps {
			for _, wall := range walls {
				if geom.CapsulePlanePenetrates(c, wall) {
					return &Violation{Cmd: cmd, Reason: fmt.Sprintf("trajectory punches into a lab wall at t=%.2f", t)}
				}
			}
		}
		for _, c := range caps {
			for _, nb := range obstacles {
				if hit(nb, c) {
					return &Violation{Cmd: cmd, Reason: fmt.Sprintf("trajectory collides with %s at t=%.2f", nb.Name, t)}
				}
			}
		}
	}
	return nil
}

// Observe advances the mirror after a command was accepted and executed:
// the mirrored arm adopts the planned end configuration.
func (s *Simulator) Observe(cmd action.Command, model state.Snapshot) {
	if !cmd.Action.IsRobotMotion() {
		return
	}
	m, ok := s.arms[cmd.Device]
	if !ok {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	tr, err := s.planned(m, cmd)
	if err != nil {
		return // mirror stays put, like a controller that skipped
	}
	m.joints = append(m.joints[:0], tr.To...)
}

// SpeculateAfter pre-solves and pre-validates next as it will run once
// prior completes, warming the plan and verdict caches off the critical
// path. The predicted start configuration is prior's planned end point
// when prior moves the same arm, the mirror's current configuration
// otherwise. model and epoch must have been captured together under the
// model owner's lock: the verdict is stored for exactly that pairing, so
// a deck change during or after the speculation simply strands the entry
// under a dead epoch — mis-speculation can waste work, never poison a
// future check. Reports whether a speculation ran.
func (s *Simulator) SpeculateAfter(prior, next action.Command, model state.Snapshot, epoch uint64) bool {
	return s.SpeculateAfterTagged(prior, next, model, epoch, "")
}

// SpeculateAfterTagged is SpeculateAfter with a flight-recorder
// correlation ID: the verdict it caches carries corr, so the on-path
// check that later consumes it can name the speculative span in its
// provenance. An empty corr degrades to the untagged behaviour.
func (s *Simulator) SpeculateAfterTagged(prior, next action.Command, model state.Snapshot, epoch uint64, corr string) bool {
	return s.SpeculateAfterTraced(prior, next, model, epoch, corr, otrace.SpanContext{})
}

// SpeculateAfterTraced is SpeculateAfterTagged under a causal parent
// span — the engine passes its "speculate" span so the lookahead's
// kin/sim child spans join the hinting command's trace.
func (s *Simulator) SpeculateAfterTraced(prior, next action.Command, model state.Snapshot,
	epoch uint64, corr string, parent otrace.SpanContext) bool {
	if !s.cacheOn || s.gui != nil || !next.Action.IsRobotMotion() {
		return false
	}
	m, ok := s.arms[next.Device]
	if !ok {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	from := m.joints
	if prior.Device == next.Device && prior.Action.IsRobotMotion() {
		tr, err := s.plannedFrom(m, m.joints, prior)
		if err != nil {
			return false // prior cannot execute; nothing sound to predict
		}
		from = tr.To
	}
	s.cachedVerdict(m, from, next, model, epoch, true, corr, parent)
	return true
}

// ArmTCP reports the mirror's current TCP for an arm (deck frame), for
// display tools.
func (s *Simulator) ArmTCP(armID string) (geom.Vec3, error) {
	m, ok := s.arms[armID]
	if !ok {
		return geom.Vec3{}, fmt.Errorf("sim: no arm %q", armID)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.profile.Chain.EndEffector(m.joints)
}

// GUIFrames reports how many GUI frames have been rendered (0 without
// WithGUI).
func (s *Simulator) GUIFrames() int {
	if s.gui == nil {
		return 0
	}
	s.guiMu.Lock()
	defer s.guiMu.Unlock()
	return s.gui.Frames()
}

// RenderASCII returns a coarse ASCII view of the last rendered frame, or
// "" when the GUI is disabled.
func (s *Simulator) RenderASCII(cols, rows int) string {
	if s.gui == nil {
		return ""
	}
	s.guiMu.Lock()
	defer s.guiMu.Unlock()
	return s.gui.ASCII(cols, rows)
}
