// Package sim implements the paper's Extended Simulator (Section III,
// Fig. 3): the vendor arm simulator (URSim) augmented with 3D cuboid
// models of every deck device, continuously polling the robot arm's
// trajectory and checking it against the cuboids, the walls, and the
// mounting platform.
//
// The simulator maintains its own mirror of each arm's joint state: it
// plans the same trajectory the arm would execute and sweeps the arm's
// full collision volume along it — which is what catches mid-path
// collisions that the target-only check misses (the paper's footnote-2
// scenario), and what rejects targets the arm cannot plan to at all.
//
// The paper reports the Extended Simulator's ~2 s (112%) overhead comes
// almost entirely from its GUI running in a virtual machine. WithGUI
// reproduces that cost class honestly: every collision check renders the
// scene to an offscreen framebuffer with a software rasteriser instead of
// sleeping.
package sim

import (
	"fmt"
	"sync"

	"repro/internal/action"
	"repro/internal/config"
	"repro/internal/geom"
	"repro/internal/kin"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/state"
)

// Violation reports why a trajectory is invalid.
type Violation struct {
	Cmd    action.Command
	Reason string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("sim: invalid trajectory for %s: %s", v.Cmd, v.Reason)
}

// Option configures the simulator.
type Option func(*Simulator)

// WithGUI enables the offscreen GUI rendering on every check, modelling
// the paper's GUI-in-a-VM deployment. Width/height are the framebuffer
// dimensions.
func WithGUI(width, height int) Option {
	return func(s *Simulator) {
		s.gui = newRasterizer(width, height)
	}
}

// WithHeldObjectAware makes the swept volume include a held object
// (matching the modified RABIT generation).
func WithHeldObjectAware(aware bool) Option {
	return func(s *Simulator) { s.heldAware = aware }
}

// WithObserver publishes simulator telemetry (collision-check counter,
// GUI frame gauge) into a registry — typically the system-wide one.
func WithObserver(reg *obs.Registry) Option {
	return func(s *Simulator) {
		s.cChecks = reg.Counter(obs.CounterSimChecks)
		s.gFrames = reg.Gauge(obs.GaugeGUIFrames)
	}
}

// mirrorArm is the simulator's model of one arm.
type mirrorArm struct {
	profile *kin.Profile
	base    geom.Vec3
	joints  []float64
	drop    float64
	radius  float64
}

// Simulator is the Extended Simulator.
type Simulator struct {
	mu        sync.Mutex
	lab       *config.Lab
	arms      map[string]*mirrorArm
	gui       *rasterizer
	heldAware bool
	// checks counts ValidTrajectory invocations (for tests/benches).
	checks int
	// cChecks/gFrames mirror the counters into the telemetry registry
	// when WithObserver is set (nil-safe otherwise).
	cChecks *obs.Counter
	gFrames *obs.Gauge
}

// New builds a simulator mirroring the given lab configuration.
func New(lab *config.Lab, opts ...Option) (*Simulator, error) {
	s := &Simulator{
		lab:       lab,
		arms:      make(map[string]*mirrorArm),
		heldAware: true,
	}
	for _, as := range lab.Spec.Arms {
		model, err := kin.ParseModel(as.Model)
		if err != nil {
			return nil, fmt.Errorf("sim: arm %s: %w", as.ID, err)
		}
		p, err := kin.NewProfile(model, geom.PoseAt(as.Base.V3()))
		if err != nil {
			return nil, fmt.Errorf("sim: arm %s: %w", as.ID, err)
		}
		s.arms[as.ID] = &mirrorArm{
			profile: p,
			base:    as.Base.V3(),
			joints:  append([]float64(nil), p.Home...),
			drop:    as.Gripper.FingerDrop,
			radius:  as.Gripper.FingerRadius,
		}
	}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// Checks returns how many trajectory validations have run.
func (s *Simulator) Checks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checks
}

// deckTarget resolves a command target into the deck frame.
func (s *Simulator) deckTarget(m *mirrorArm, cmd action.Command) (geom.Vec3, error) {
	if cmd.TargetName != "" {
		p, ok := s.lab.LocationPos(cmd.Device, cmd.TargetName)
		if !ok {
			return geom.Vec3{}, fmt.Errorf("unknown location %q", cmd.TargetName)
		}
		return p.Add(m.base), nil
	}
	return cmd.Target.Add(m.base), nil
}

// planned computes the trajectory a motion command would execute in the
// mirror, or an error when no trajectory exists.
func (s *Simulator) planned(m *mirrorArm, cmd action.Command) (*kin.Trajectory, error) {
	switch cmd.Action {
	case action.MoveHome:
		return &kin.Trajectory{Chain: m.profile.Chain, From: m.joints, To: m.profile.Home}, nil
	case action.MoveSleep:
		return &kin.Trajectory{Chain: m.profile.Chain, From: m.joints, To: m.profile.Sleep}, nil
	default:
		target, err := s.deckTarget(m, cmd)
		if err != nil {
			return nil, err
		}
		return m.profile.Chain.PlanJointMove(m.joints, target, kin.DefaultIKOptions())
	}
}

// obstacles assembles the deck cuboids visible to a move: every device
// box except (a) the device being entered (its door is guarded by rule 1)
// and (b) any device the arm is currently reaching inside of (leaving it
// must not read as a collision), in deck coordinates.
func (s *Simulator) obstacles(cmd action.Command, model state.Snapshot) []rules.NamedBox {
	var out []rules.NamedBox
	excluded := map[string]bool{}
	if cmd.InsideDevice != "" {
		excluded[cmd.InsideDevice] = true
	}
	if cmd.TargetName != "" && s.lab.LocationIsInside(cmd.TargetName) {
		if owner, ok := s.lab.LocationOwner(cmd.TargetName); ok {
			excluded[owner] = true
		}
	}
	for _, ds := range s.lab.Spec.Devices {
		if model.GetBool(state.ArmInside(cmd.Device, ds.ID)) {
			excluded[ds.ID] = true
		}
		// Open-doored devices may be legitimately reached into.
		for _, door := range s.lab.DeviceDoors(ds.ID) {
			if model.GetBool(state.DoorStatusOf(ds.ID, door)) {
				excluded[ds.ID] = true
				break
			}
		}
	}
	for _, ds := range s.lab.Spec.Devices {
		if excluded[ds.ID] || ds.Type == "sensor" {
			continue
		}
		nb := rules.NamedBox{Name: ds.ID, Box: ds.Cuboid.AABB()}
		if ds.Shape == "cylinder" || ds.Shape == "dome" {
			cap := geom.InscribedVerticalCapsule(nb.Box)
			nb.Rounded = &cap
		}
		out = append(out, nb)
	}
	return out
}

// heldCapsuleFor returns the held object capsule hanging below the TCP,
// if the model believes the arm holds something and the simulator is
// held-object aware.
func (s *Simulator) heldCapsuleFor(cmd action.Command, model state.Snapshot, tcp geom.Vec3) (geom.Capsule, bool) {
	if !s.heldAware {
		return geom.Capsule{}, false
	}
	if !model.GetBool(state.Holding(cmd.Device)) {
		return geom.Capsule{}, false
	}
	obj := model.GetString(state.HeldObject(cmd.Device))
	if obj == "" {
		return geom.Capsule{}, false
	}
	og, ok := s.lab.ObjectGeometry(obj)
	if !ok {
		return geom.Capsule{}, false
	}
	hang := og.CarriedHang - og.Radius
	if hang < 0 {
		hang = 0
	}
	return geom.NewCapsule(tcp, tcp.Add(geom.V(0, 0, -hang)), og.Radius), true
}

// ValidTrajectory validates one robot motion command against the mirror:
// plan the move, sweep the full arm volume, and reject on any collision
// with the deck cuboids or the platform. The model snapshot supplies
// RABIT's current beliefs (held object, door states).
func (s *Simulator) ValidTrajectory(cmd action.Command, model state.Snapshot) error {
	if !cmd.Action.IsRobotMotion() {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checks++
	s.cChecks.Inc()
	if s.gui != nil {
		defer func() { s.gFrames.Set(int64(s.gui.Frames())) }()
	}
	m, ok := s.arms[cmd.Device]
	if !ok {
		return nil // the simulator only models configured arms
	}
	tr, err := s.planned(m, cmd)
	if err != nil {
		// The arm cannot plan this move at all. Whatever the real
		// controller does (raise, halt, or silently skip), the
		// experiment's intent cannot be executed — alert.
		return &Violation{Cmd: cmd, Reason: fmt.Sprintf("cannot compute trajectory: %v", err)}
	}
	obstacles := s.obstacles(cmd, model)
	floor := geom.PlaneFromPointNormal(geom.V(0, 0, s.lab.Spec.FloorZ), geom.V(0, 0, 1))
	walls := make([]geom.Plane, 0, len(s.lab.Spec.Walls))
	for _, ws := range s.lab.Spec.Walls {
		walls = append(walls, geom.Plane{N: ws.Normal.V3().Unit(), D: ws.Offset})
	}

	var hit *Violation
	sweepErr := tr.SweepCapsules(0.02, func(t float64, linkCaps []geom.Capsule) bool {
		tcp, err := m.profile.Chain.EndEffector(tr.At(t))
		if err != nil {
			return true
		}
		// Tip capsules (fingers + held object) are additionally checked
		// against the platform; link capsules are not — the base column
		// legitimately meets it.
		tipCaps := []geom.Capsule{
			geom.NewCapsule(tcp, tcp.Add(geom.V(0, 0, -m.drop)), m.radius),
		}
		if held, ok := s.heldCapsuleFor(cmd, model, tcp); ok {
			tipCaps = append(tipCaps, held)
		}
		if s.gui != nil {
			s.gui.renderScene(obstacles, append(linkCaps, tipCaps...))
		}
		for _, c := range tipCaps {
			if geom.CapsulePlanePenetrates(c, floor) {
				hit = &Violation{Cmd: cmd, Reason: fmt.Sprintf("trajectory dips below the platform at t=%.2f", t)}
				return false
			}
		}
		for _, c := range append(linkCaps, tipCaps...) {
			for _, wall := range walls {
				if geom.CapsulePlanePenetrates(c, wall) {
					hit = &Violation{Cmd: cmd, Reason: fmt.Sprintf("trajectory punches into a lab wall at t=%.2f", t)}
					return false
				}
			}
		}
		for _, c := range append(linkCaps, tipCaps...) {
			for _, nb := range obstacles {
				if nb.IntersectsCapsule(c) {
					hit = &Violation{Cmd: cmd, Reason: fmt.Sprintf("trajectory collides with %s at t=%.2f", nb.Name, t)}
					return false
				}
			}
		}
		return true
	})
	if sweepErr != nil {
		return &Violation{Cmd: cmd, Reason: sweepErr.Error()}
	}
	if hit != nil {
		return hit
	}
	return nil
}

// Observe advances the mirror after a command was accepted and executed:
// the mirrored arm adopts the planned end configuration.
func (s *Simulator) Observe(cmd action.Command, model state.Snapshot) {
	if !cmd.Action.IsRobotMotion() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.arms[cmd.Device]
	if !ok {
		return
	}
	tr, err := s.planned(m, cmd)
	if err != nil {
		return // mirror stays put, like a controller that skipped
	}
	m.joints = append([]float64(nil), tr.To...)
}

// ArmTCP reports the mirror's current TCP for an arm (deck frame), for
// display tools.
func (s *Simulator) ArmTCP(armID string) (geom.Vec3, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.arms[armID]
	if !ok {
		return geom.Vec3{}, fmt.Errorf("sim: no arm %q", armID)
	}
	return m.profile.Chain.EndEffector(m.joints)
}

// GUIFrames reports how many GUI frames have been rendered (0 without
// WithGUI).
func (s *Simulator) GUIFrames() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gui == nil {
		return 0
	}
	return s.gui.Frames()
}

// RenderASCII returns a coarse ASCII view of the last rendered frame, or
// "" when the GUI is disabled.
func (s *Simulator) RenderASCII(cols, rows int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gui == nil {
		return ""
	}
	return s.gui.ASCII(cols, rows)
}
