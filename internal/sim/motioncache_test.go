package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/action"
	"repro/internal/geom"
	"repro/internal/kin"
	"repro/internal/labs"
	"repro/internal/obs"
	"repro/internal/state"
)

// parkForCrossing drives the footnote-2 approach legs so the arm sits
// just south of the centrifuge; the crossing leg is then accepted or
// rejected purely by the centrifuge's door state.
func parkForCrossing(t *testing.T, s *Simulator, m state.Snapshot) {
	t.Helper()
	for _, cmd := range []action.Command{
		moveOn("viperx", geom.V(0.63, -0.38, 0.30)),
		moveOn("viperx", geom.V(0.63, -0.38, 0.12)),
	} {
		if err := s.ValidTrajectory(cmd, m); err != nil {
			t.Fatalf("approach leg %v rejected: %v", cmd.Target, err)
		}
		s.Observe(cmd, m)
	}
}

func TestMotionCacheRepeatCheckIsAHit(t *testing.T) {
	reg := obs.NewRegistry("mc")
	s, lab := testbedSim(t, WithMotionCache(true), WithObserver(reg))
	m := model(lab)
	cmd := move(geom.V(0.32, 0.22, 0.25))
	for i := 0; i < 3; i++ {
		if err := s.ValidTrajectory(cmd, m); err != nil {
			t.Fatalf("check %d: %v", i, err)
		}
	}
	if got := reg.Counter(obs.CounterVerdictCacheMisses).Value(); got != 1 {
		t.Errorf("verdict misses = %d, want 1", got)
	}
	if got := reg.Counter(obs.CounterVerdictCacheHits).Value(); got != 2 {
		t.Errorf("verdict hits = %d, want 2", got)
	}
	// The IK solve was also memoized: the two hits never re-planned, and
	// the single miss planned once.
	if st := s.PlanCache().Stats(); st.Misses != 1 {
		t.Errorf("plan misses = %d, want 1", st.Misses)
	}
	// Violations are memoized too, with the reason intact.
	bad := move(geom.V(0.35, 0.25, 0.05)) // grid collision
	first := verdict(s.ValidTrajectory(bad, m))
	second := verdict(s.ValidTrajectory(bad, m))
	if first == "ok" || first != second {
		t.Errorf("cached violation mismatch: %q then %q", first, second)
	}
	if got := reg.Counter(obs.CounterVerdictCacheHits).Value(); got != 3 {
		t.Errorf("verdict hits = %d, want 3 after cached violation", got)
	}
}

func TestDeckEpochInvalidatesVerdicts(t *testing.T) {
	reg := obs.NewRegistry("epoch")
	s, lab := testbedSim(t, WithMotionCache(true), WithObserver(reg))
	mClosed := model(lab)
	parkForCrossing(t, s, mClosed)
	crossing := move(geom.V(0.63, -0.02, 0.12))

	err := s.ValidTrajectory(crossing, mClosed)
	if err == nil || !strings.Contains(err.Error(), "centrifuge") {
		t.Fatalf("door-closed crossing should hit the centrifuge: %v", err)
	}
	if v := verdict(s.ValidTrajectory(crossing, mClosed)); v != verdict(err) {
		t.Fatalf("cached verdict changed: %q", v)
	}

	// Open the door; the model owner bumps the epoch with the change.
	mOpen := mClosed.Clone()
	mOpen.Set(state.DoorStatus("centrifuge"), state.Bool(true))
	s.BumpDeckEpoch()
	misses := reg.Counter(obs.CounterVerdictCacheMisses).Value()
	if err := s.ValidTrajectory(crossing, mOpen); err != nil {
		t.Fatalf("door-open crossing rejected: %v", err)
	}
	if got := reg.Counter(obs.CounterVerdictCacheMisses).Value(); got != misses+1 {
		t.Errorf("post-bump check was not a miss (misses %d -> %d)", misses, got)
	}
	if got := reg.Counter(obs.CounterDeckEpochBumps).Value(); got != 1 {
		t.Errorf("epoch bump counter = %d, want 1", got)
	}

	// Closing it again bumps again; the stale pass under the open-door
	// epoch must not be served.
	s.BumpDeckEpoch()
	err = s.ValidTrajectory(crossing, mClosed)
	if err == nil || !strings.Contains(err.Error(), "centrifuge") {
		t.Fatalf("stale door-open verdict served after re-close: %v", err)
	}
}

// TestCachedVerdictEquivalenceRandomized is the acceptance property test:
// over hundreds of randomized interleavings of motion commands and
// deck-relevant model mutations, the cached simulator (epoch bumped on
// every mutation) returns exactly the verdicts — reason strings included
// — of an uncached simulator driven identically. Warm-start seeding is
// disabled so the plan cache is bit-identical to the cold planner and
// verdict equivalence is exact, not merely tolerance-equal.
func TestCachedVerdictEquivalenceRandomized(t *testing.T) {
	lab, err := labs.Testbed()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("prop")
	cached, err := New(lab, WithMotionCache(true), WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	cached.PlanCache().SetWarmStart(false)
	plain, err := New(lab)
	if err != nil {
		t.Fatal(err)
	}

	m := lab.InitialModelState()
	rng := rand.New(rand.NewSource(42))

	// Finite target pools so the interleaving revisits moves and the
	// cache actually engages. Each pool mixes free space, deck
	// collisions, wall strikes, door-gated paths, and an unplannable
	// target (targets are in the arm's base frame).
	pools := map[string][]geom.Vec3{
		"viperx": {
			geom.V(0.32, 0.22, 0.25), geom.V(0.15, 0.30, 0.25),
			geom.V(0.35, 0.25, 0.05), geom.V(0.63, -0.38, 0.30),
			geom.V(0.63, -0.38, 0.12), geom.V(0.63, -0.02, 0.12),
			geom.V(0.35, 0.52, 0.35), geom.V(0.35, 0.64, 0.30),
			geom.V(0.45, 0.10, 0.07), geom.V(0.45, 0.10, 0.30),
			geom.V(0.1, 0.1, 1.5),
		},
		"ned2": {
			geom.V(-0.2, 0.2, 0.2), geom.V(-0.17, -0.22, 0.08),
			geom.V(-0.15, 0.25, 0.15), geom.V(-0.25, -0.1, 0.25),
			geom.V(0.1, 0.1, 1.5),
		},
	}
	arms := []string{"viperx", "ned2"}

	// Deck-relevant mutations: the model owner applies the change and
	// bumps the cached simulator's epoch with it.
	mutations := []func(){
		func() { toggleBool(m, state.DoorStatus("centrifuge")) },
		func() { toggleBool(m, state.DoorStatus("dosing_device")) },
		func() {
			holding := !m.GetBool(state.Holding("viperx"))
			m.Set(state.Holding("viperx"), state.Bool(holding))
			obj := ""
			if holding {
				obj = "vial_1"
			}
			m.Set(state.HeldObject("viperx"), state.Str(obj))
		},
		func() { toggleBool(m, state.ArmInside("ned2", "dosing_device")) },
	}

	const wantChecks = 550
	checks, mutates := 0, 0
	for checks < wantChecks {
		if rng.Intn(10) < 3 {
			mutations[rng.Intn(len(mutations))]()
			cached.BumpDeckEpoch()
			mutates++
			continue
		}
		arm := arms[rng.Intn(len(arms))]
		var cmd action.Command
		switch rng.Intn(10) {
		case 0:
			cmd = action.Command{Device: arm, Action: action.MoveHome}
		case 1:
			cmd = action.Command{Device: arm, Action: action.MoveSleep}
		default:
			pool := pools[arm]
			cmd = moveOn(arm, pool[rng.Intn(len(pool))])
		}
		vc := verdict(cached.ValidTrajectory(cmd, m))
		vp := verdict(plain.ValidTrajectory(cmd, m))
		if vc != vp {
			t.Fatalf("check %d (%s %v after %d mutations): cached %q, uncached %q",
				checks, arm, cmd.Target, mutates, vc, vp)
		}
		if vc == "ok" {
			cached.Observe(cmd, m)
			plain.Observe(cmd, m)
		}
		checks++
	}

	hits := reg.Counter(obs.CounterVerdictCacheHits).Value()
	misses := reg.Counter(obs.CounterVerdictCacheMisses).Value()
	if hits == 0 {
		t.Error("property run never hit the verdict cache — nothing was proven")
	}
	if mutates == 0 {
		t.Error("property run never mutated the deck")
	}
	if hits+misses != int64(cached.Checks()) {
		t.Errorf("hits %d + misses %d != checks %d", hits, misses, cached.Checks())
	}
	t.Logf("%d checks, %d mutations, %d hits, %d misses, %d plan-cache hits",
		checks, mutates, hits, misses, cached.PlanCache().Stats().Hits)
}

func toggleBool(m state.Snapshot, k state.Key) {
	m.Set(k, state.Bool(!m.GetBool(k)))
}

// TestSharedPlanCacheConcurrentEpochMutation is the -race stress for the
// fast path: both testbed arms check door-gated moves from concurrent
// goroutines through one shared plan cache while a mutator goroutine
// flips the centrifuge door and bumps the deck epoch under the same
// RWMutex discipline the engine uses (checkers hold RLock across the
// model read and the check; the mutator publishes model + epoch under
// Lock). Every verdict must match the door state the checker read — a
// single stale cached verdict fails the test.
func TestSharedPlanCacheConcurrentEpochMutation(t *testing.T) {
	lab, err := labs.Testbed()
	if err != nil {
		t.Fatal(err)
	}
	pc := kin.NewPlanCache(0)
	reg := obs.NewRegistry("race")
	s, err := New(lab, WithMotionCache(true), WithSharedPlanCache(pc), WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(lab)
	if err != nil {
		t.Fatal(err)
	}

	mClosed := lab.InitialModelState()
	parkForCrossing(t, s, mClosed)
	parkForCrossing(t, ref, mClosed)
	mOpen := mClosed.Clone()
	mOpen.Set(state.DoorStatus("centrifuge"), state.Bool(true))

	cmds := map[string]action.Command{
		"viperx": moveOn("viperx", geom.V(0.63, -0.02, 0.12)),
		"ned2":   moveOn("ned2", geom.V(-0.17, -0.22, 0.08)),
	}
	// Ground truth per (arm, door state) from the uncached reference.
	expect := map[string]map[bool]string{}
	for arm, cmd := range cmds {
		expect[arm] = map[bool]string{
			false: verdict(ref.ValidTrajectory(cmd, mClosed)),
			true:  verdict(ref.ValidTrajectory(cmd, mOpen)),
		}
	}
	if expect["viperx"][false] == expect["viperx"][true] {
		t.Fatalf("degenerate geometry: crossing verdict %q regardless of door",
			expect["viperx"][false])
	}

	// Shared published state, engine-style.
	var pub sync.RWMutex
	cur := mClosed
	doorOpen := false

	const iters = 250
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for arm, cmd := range cmds {
		wg.Add(1)
		go func(arm string, cmd action.Command) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				pub.RLock()
				snap, open := cur, doorOpen
				got := verdict(s.ValidTrajectory(cmd, snap))
				pub.RUnlock()
				if want := expect[arm][open]; got != want {
					select {
					case errs <- fmt.Sprintf("%s iter %d (door open=%v): got %q, want %q",
						arm, i, open, got, want):
					default:
					}
					return
				}
			}
		}(arm, cmd)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/3; i++ {
			pub.Lock()
			doorOpen = !doorOpen
			if doorOpen {
				cur = mOpen
			} else {
				cur = mClosed
			}
			s.BumpDeckEpoch()
			pub.Unlock()
		}
	}()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	if hits := reg.Counter(obs.CounterVerdictCacheHits).Value(); hits == 0 {
		t.Error("stress run never hit the verdict cache")
	}
	if st := pc.Stats(); st.Hits == 0 {
		t.Error("shared plan cache was never hit across the concurrent arms")
	}
}

func TestSpeculateAfterWarmsNextCheck(t *testing.T) {
	reg := obs.NewRegistry("spec")
	s, lab := testbedSim(t, WithMotionCache(true), WithObserver(reg))
	m := model(lab)
	cur := move(geom.V(0.32, 0.22, 0.25))
	next := move(geom.V(0.15, 0.30, 0.25))

	if !s.SpeculateAfter(cur, next, m, s.DeckEpoch()) {
		t.Fatal("speculation refused")
	}
	// Speculative work must not show up as on-path traffic.
	if got := reg.Counter(obs.CounterVerdictCacheMisses).Value(); got != 0 {
		t.Errorf("speculation counted as an on-path miss (%d)", got)
	}

	if err := s.ValidTrajectory(cur, m); err != nil {
		t.Fatal(err)
	}
	s.Observe(cur, m)
	if err := s.ValidTrajectory(next, m); err != nil {
		t.Fatal(err)
	}
	if got := s.SpeculationHits(); got != 1 {
		t.Errorf("speculation hits = %d, want 1", got)
	}
	if got := reg.Gauge(obs.GaugeSpeculationHits).Value(); got != 1 {
		t.Errorf("speculation gauge = %d, want 1", got)
	}
	// The speculative credit is claimed once; a re-check is an ordinary hit.
	if err := s.ValidTrajectory(next, m); err != nil {
		t.Fatal(err)
	}
	if got := s.SpeculationHits(); got != 1 {
		t.Errorf("speculation hits double-counted: %d", got)
	}

	// Guards: non-motion next, unknown arm, cache off.
	if s.SpeculateAfter(cur, action.Command{Device: "dosing_device", Action: action.OpenDoor}, m, s.DeckEpoch()) {
		t.Error("speculated a non-motion command")
	}
	if s.SpeculateAfter(cur, moveOn("ghost", geom.V(0.2, 0.2, 0.2)), m, s.DeckEpoch()) {
		t.Error("speculated for an unmodelled arm")
	}
	off, _ := testbedSim(t)
	if off.SpeculateAfter(cur, next, m, 0) {
		t.Error("speculated with the motion cache off")
	}
}

func TestSpeculationStrandedByEpochBump(t *testing.T) {
	reg := obs.NewRegistry("spec-stale")
	s, lab := testbedSim(t, WithMotionCache(true), WithObserver(reg))
	m := model(lab)
	cur := move(geom.V(0.32, 0.22, 0.25))
	next := move(geom.V(0.15, 0.30, 0.25))

	epoch := s.DeckEpoch()
	if !s.SpeculateAfter(cur, next, m, epoch) {
		t.Fatal("speculation refused")
	}
	// The deck changes between speculation and execution: the
	// speculative verdict is stranded under the dead epoch.
	s.BumpDeckEpoch()
	if err := s.ValidTrajectory(cur, m); err != nil {
		t.Fatal(err)
	}
	s.Observe(cur, m)
	misses := reg.Counter(obs.CounterVerdictCacheMisses).Value()
	if err := s.ValidTrajectory(next, m); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(obs.CounterVerdictCacheMisses).Value(); got != misses+1 {
		t.Error("stale speculative verdict was served across an epoch bump")
	}
	if got := s.SpeculationHits(); got != 0 {
		t.Errorf("speculation hits = %d, want 0 after mis-speculation", got)
	}
}

// TestSpeculateAfterPredictsFromPriorEnd: when the prior command moves
// the same arm, the speculation plans from the prior's end configuration
// — the state the arm will actually be in — not the mirror's current one.
func TestSpeculateAfterPredictsFromPriorEnd(t *testing.T) {
	s, lab := testbedSim(t, WithMotionCache(true))
	m := model(lab)
	parked := s.arms["viperx"]
	parked.mu.Lock()
	home := append([]float64(nil), parked.joints...)
	parked.mu.Unlock()

	cur := move(geom.V(0.63, -0.38, 0.30))
	next := move(geom.V(0.63, -0.38, 0.12))
	if !s.SpeculateAfter(cur, next, m, s.DeckEpoch()) {
		t.Fatal("speculation refused")
	}
	// The mirror must not have moved.
	parked.mu.Lock()
	moved := !equalJoints(parked.joints, home)
	parked.mu.Unlock()
	if moved {
		t.Fatal("speculation advanced the mirror")
	}
	// Executing the pair consumes the speculative verdict, which is only
	// possible if it was keyed on cur's end configuration.
	if err := s.ValidTrajectory(cur, m); err != nil {
		t.Fatal(err)
	}
	s.Observe(cur, m)
	if err := s.ValidTrajectory(next, m); err != nil {
		t.Fatal(err)
	}
	if got := s.SpeculationHits(); got != 1 {
		t.Errorf("speculation hits = %d, want 1", got)
	}
}

func equalJoints(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestVerdictCacheLRUEviction(t *testing.T) {
	c := newVerdictCache(3)
	var ev obs.Counter
	for i := 0; i < 5; i++ {
		c.put(fmt.Sprintf("k%d", i), outcome{reason: ""}, &ev)
	}
	if c.len() != 3 {
		t.Errorf("len = %d, want 3", c.len())
	}
	if ev.Value() != 2 {
		t.Errorf("evictions = %d, want 2", ev.Value())
	}
	// Oldest keys are gone, newest retained.
	if _, ok, _ := c.get("k0", true); ok {
		t.Error("k0 survived eviction")
	}
	if _, ok, _ := c.get("k4", true); !ok {
		t.Error("k4 evicted")
	}
	// First write wins: a second put under the same key is a no-op.
	c.put("k4", outcome{reason: "changed"}, &ev)
	if v, _, _ := c.get("k4", true); v.reason != "" {
		t.Error("second put overwrote the verdict")
	}
}
