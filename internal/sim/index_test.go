package sim

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/action"
	"repro/internal/config"
	"repro/internal/geom"
	"repro/internal/labs"
	"repro/internal/obs"
)

// The PR's verdict-equivalence property: the deck spatial index (the
// default cold path) must return exactly the verdicts — including the
// reason strings — of the brute-force scan, over randomized decks built
// by jittering the three lab configs' device placements and over
// randomized trajectories. Anything less than string equality would let
// a pruning bug hide behind "still rejected, different reason".

// jitterSpec translates every device by a small random offset — cuboid,
// interior, and the locations the device owns move together, so the
// deck stays self-consistent — producing a placement the fixed-grid
// tests never saw.
func jitterSpec(spec *config.LabSpec, rng *rand.Rand) *config.LabSpec {
	d := func() float64 { return (rng.Float64()*2 - 1) * 0.03 }
	for i := range spec.Devices {
		dev := &spec.Devices[i]
		dx, dy, dz := d(), d(), rng.Float64()*0.02
		move := func(v *config.Vec) { v.X += dx; v.Y += dy; v.Z += dz }
		move(&dev.Cuboid.Min)
		move(&dev.Cuboid.Max)
		if dev.Interior != nil {
			move(&dev.Interior.Min)
			move(&dev.Interior.Max)
		}
		for j := range spec.Locations {
			loc := &spec.Locations[j]
			if loc.Owner != dev.ID {
				continue
			}
			move(&loc.DeckPos)
			for arm, v := range loc.PerArm {
				v.X += dx
				v.Y += dy
				v.Z += dz
				loc.PerArm[arm] = v
			}
		}
	}
	return spec
}

// randTargets yields per-arm seeded target streams in an annular shell
// around the arm base: most plan and sweep, some reject, a few are
// unplannable — all verdict classes appear.
func randTargets(rng *rand.Rand, n int) []geom.Vec3 {
	out := make([]geom.Vec3, 0, n)
	for i := 0; i < n; i++ {
		r := 0.12 + rng.Float64()*0.40
		th := rng.Float64() * 2 * math.Pi
		out = append(out, geom.V(r*math.Cos(th), r*math.Sin(th), 0.02+rng.Float64()*0.40))
	}
	return out
}

// TestIndexVerdictEquivalenceRandomized jitters each lab config's deck,
// builds an indexed and a brute simulator over the identical spec, and
// replays random per-arm trajectories (Observe on accept, so successive
// checks start from new configurations) asserting verdict-string
// equality throughout.
func TestIndexVerdictEquivalenceRandomized(t *testing.T) {
	specs := map[string]func() *config.LabSpec{
		"testbed":      labs.TestbedSpec,
		"hein":         labs.HeinProductionSpec,
		"berlinguette": labs.BerlinguetteSpec,
	}
	for name, mk := range specs {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(name)) * 1009))
			for trial := 0; trial < 6; trial++ {
				lab, err := config.Compile(jitterSpec(mk(), rng))
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				indexed, err := New(lab)
				if err != nil {
					t.Fatal(err)
				}
				brute, err := New(lab, WithBroadphase(false))
				if err != nil {
					t.Fatal(err)
				}
				m := lab.InitialModelState()
				accepts, rejects := 0, 0
				for _, as := range lab.Spec.Arms {
					for i, tgt := range randTargets(rng, 25) {
						cmd := moveOn(as.ID, tgt)
						vi := verdict(indexed.ValidTrajectory(cmd, m))
						vb := verdict(brute.ValidTrajectory(cmd, m))
						if vi != vb {
							t.Fatalf("trial %d %s target %d %v:\n  indexed: %q\n  brute:   %q",
								trial, as.ID, i, tgt, vi, vb)
						}
						if vi == "ok" {
							accepts++
							indexed.Observe(cmd, m)
							brute.Observe(cmd, m)
						} else {
							rejects++
						}
					}
				}
				if accepts == 0 || rejects == 0 {
					t.Fatalf("trial %d: degenerate stream (%d accepts, %d rejects)", trial, accepts, rejects)
				}
			}
		})
	}
}

// TestLegacySweepVerdictEquivalence pins the retained legacy pipeline to
// the same contract on the fixed testbed grid: the benchmark's
// before-measurement must be measuring the same decisions, or the
// speedup would compare different safety envelopes.
func TestLegacySweepVerdictEquivalence(t *testing.T) {
	lab, err := labs.Testbed()
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := New(lab, WithLegacySweep(true))
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := New(lab)
	if err != nil {
		t.Fatal(err)
	}
	m := lab.InitialModelState()
	for _, x := range []float64{0.12, 0.26, 0.35, 0.5, 0.63} {
		for _, y := range []float64{-0.45, -0.18, 0.05, 0.25, 0.45, 0.64} {
			for _, z := range []float64{0.04, 0.12, 0.3} {
				cmd := moveOn("viperx", geom.V(x, y, z))
				vl := verdict(legacy.ValidTrajectory(cmd, m))
				vi := verdict(indexed.ValidTrajectory(cmd, m))
				if vl != vi {
					t.Fatalf("target %v: legacy %q, indexed %q", cmd.Target, vl, vi)
				}
				if vl == "ok" {
					legacy.Observe(cmd, m)
					indexed.Observe(cmd, m)
				}
			}
		}
	}
}

// TestIndexRebuildUnderLoad races concurrent sharded checks — all
// sharing one deck index — against a goroutine hammering BumpDeckEpoch,
// so index rebuilds land mid-batch while both arms are querying. Deck
// geometry is immutable, so every verdict must still match a serial
// brute-force run; under -race this also proves the atomic
// publish/double-checked rebuild has no data race.
func TestIndexRebuildUnderLoad(t *testing.T) {
	lab, err := labs.Testbed()
	if err != nil {
		t.Fatal(err)
	}
	m := lab.InitialModelState()

	streams := map[string][]action.Command{}
	for i, as := range lab.Spec.Arms {
		rng := rand.New(rand.NewSource(int64(i)*31 + 7))
		cmds := make([]action.Command, 0, 40)
		for _, tgt := range randTargets(rng, 40) {
			cmds = append(cmds, moveOn(as.ID, tgt))
		}
		streams[as.ID] = cmds
	}

	brute, err := New(lab, WithBroadphase(false))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{}
	for arm, cmds := range streams {
		want[arm] = armScript(brute, m, cmds)
	}

	reg := obs.NewRegistry("index-under-load")
	indexed, err := New(lab, WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var bumps sync.WaitGroup
	bumps.Add(1)
	go func() {
		defer bumps.Done()
		for !stop.Load() {
			indexed.BumpDeckEpoch()
		}
	}()
	got := map[string][]string{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for arm, cmds := range streams {
		wg.Add(1)
		go func(arm string, cmds []action.Command) {
			defer wg.Done()
			vs := armScript(indexed, m, cmds)
			mu.Lock()
			got[arm] = vs
			mu.Unlock()
		}(arm, cmds)
	}
	wg.Wait()
	stop.Store(true)
	bumps.Wait()

	for arm := range streams {
		for i := range want[arm] {
			if got[arm][i] != want[arm][i] {
				t.Errorf("%s cmd %d: under-load verdict %q, serial brute %q", arm, i, got[arm][i], want[arm][i])
			}
		}
	}
	// Epoch churn restamps the geometrically immutable index rather than
	// rebuilding it: only the very first index counts as a true build.
	if rebuilds := reg.Counter(obs.CounterSimIndexRebuilds).Value(); rebuilds != 1 {
		t.Errorf("epoch churn should restamp, not rebuild: got %d true builds, want 1", rebuilds)
	}
}

// TestIndexTelemetry checks the index instruments: candidate counter and
// rebuild counter/histogram accumulate on the default path.
func TestIndexTelemetry(t *testing.T) {
	lab, err := labs.Testbed()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("index-telemetry")
	s, err := New(lab, WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	m := lab.InitialModelState()
	// Straight into the grid body: the index must surface it as a
	// candidate for the narrow phase to reject.
	if err := s.ValidTrajectory(moveOn("viperx", geom.V(0.35, 0.25, 0.05)), m); err == nil {
		t.Fatal("grid-collision move accepted")
	}
	if got := reg.Counter(obs.CounterSimIndexRebuilds).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.CounterSimIndexRebuilds, got)
	}
	if got := reg.Counter(obs.CounterSimIndexCandidates).Value(); got == 0 {
		t.Errorf("%s = 0, want > 0", obs.CounterSimIndexCandidates)
	}
	if got := reg.Histogram(obs.HistSimIndexRebuild).Count(); got != 1 {
		t.Errorf("%s count = %d, want 1", obs.HistSimIndexRebuild, got)
	}
	// A second check on the same epoch must not rebuild.
	if err := s.ValidTrajectory(moveOn("viperx", geom.V(0.15, 0.30, 0.25)), m); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(obs.CounterSimIndexRebuilds).Value(); got != 1 {
		t.Errorf("same-epoch recheck rebuilt the index: %s = %d, want 1", obs.CounterSimIndexRebuilds, got)
	}
}
