package action

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestIsRobotMotion(t *testing.T) {
	motion := []Label{MoveRobot, MoveRobotInside, MoveHome, MoveSleep}
	for _, l := range motion {
		if !l.IsRobotMotion() {
			t.Errorf("%s should be robot motion", l)
		}
	}
	nonMotion := []Label{PickObject, OpenDoor, StartAction, DoseSolid, OpenGripper, ReadStatus}
	for _, l := range nonMotion {
		if l.IsRobotMotion() {
			t.Errorf("%s should not be robot motion", l)
		}
	}
}

func TestIsManipulation(t *testing.T) {
	for _, l := range []Label{PickObject, PlaceObject, OpenGripper, CloseGripper} {
		if !l.IsManipulation() {
			t.Errorf("%s should be manipulation", l)
		}
	}
	for _, l := range []Label{MoveRobot, OpenDoor, DoseLiquid} {
		if l.IsManipulation() {
			t.Errorf("%s should not be manipulation", l)
		}
	}
}

func TestCommandValidate(t *testing.T) {
	tests := []struct {
		name    string
		cmd     Command
		wantErr bool
	}{
		{
			"valid-named-move",
			Command{Device: "viperx", Action: MoveRobot, TargetName: "grid_NW"},
			false,
		},
		{
			"valid-raw-move",
			Command{Device: "viperx", Action: MoveRobot, Target: geom.V(0.4, 0, 0.2)},
			false,
		},
		{
			"move-nan-target",
			Command{Device: "viperx", Action: MoveRobot, Target: geom.Vec3{X: math.NaN()}},
			true,
		},
		{
			"no-device",
			Command{Action: MoveRobot, TargetName: "grid_NW"},
			true,
		},
		{
			"move-inside-no-device",
			Command{Device: "viperx", Action: MoveRobotInside},
			true,
		},
		{
			"move-inside-ok",
			Command{Device: "viperx", Action: MoveRobotInside, InsideDevice: "dosing_device"},
			false,
		},
		{
			"negative-dose",
			Command{Device: "dosing_device", Action: DoseSolid, Value: -1},
			true,
		},
		{
			"zero-dose-ok",
			Command{Device: "dosing_device", Action: DoseSolid, Value: 0},
			false,
		},
		{
			"transfer-missing-container",
			Command{Device: "pump", Action: TransferSubstance, FromContainer: "beaker"},
			true,
		},
		{
			"transfer-ok",
			Command{Device: "pump", Action: TransferSubstance, FromContainer: "beaker", ToContainer: "vial_1"},
			false,
		},
		{
			"set-value-zero-ok",
			Command{Device: "hotplate", Action: SetActionValue, Value: 0},
			false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cmd.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestCommandString(t *testing.T) {
	tests := []struct {
		name     string
		cmd      Command
		contains []string
	}{
		{
			"named-move",
			Command{Seq: 3, Device: "viperx", Action: MoveRobot, TargetName: "grid_NW"},
			[]string{"#3", "viperx.move_robot", "grid_NW"},
		},
		{
			"raw-move",
			Command{Seq: 1, Device: "ned2", Action: MoveRobot, Target: geom.V(0.443, -0.010, 0.292)},
			[]string{"ned2.move_robot", "0.443"},
		},
		{
			"move-inside",
			Command{Device: "viperx", Action: MoveRobotInside, InsideDevice: "dosing_device", TargetName: "dd_pickup"},
			[]string{"inside=dosing_device"},
		},
		{
			"set-value",
			Command{Device: "hotplate", Action: SetActionValue, Value: 120},
			[]string{"120"},
		},
		{
			"pick",
			Command{Device: "ur3e", Action: PickObject, Object: "vial_1"},
			[]string{"pick_object(vial_1)"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := tt.cmd.String()
			for _, want := range tt.contains {
				if !strings.Contains(s, want) {
					t.Errorf("String() = %q missing %q", s, want)
				}
			}
		})
	}
}
