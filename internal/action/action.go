// Package action defines the command vocabulary that flows from experiment
// scripts through the RATracer-style interceptor into RABIT and finally to
// the device drivers. A Command is the unit the Fig. 2 algorithm fetches,
// validates, and executes.
//
// Two levels of abstraction coexist, mirroring the paper's deployments:
// the Hein Lab production wrappers expose semantic actions (pick_object,
// place_object — Table II), while the testbed wrappers drive low-level
// gripper commands (open_gripper / close_gripper). The distinction matters:
// Bug C (a deleted pick-up call) is undetectable on the testbed precisely
// because RABIT only ever sees gripper-level traffic there.
package action

import (
	"fmt"
	"time"

	"repro/internal/geom"
)

// Label names an action type; each label has an entry in the rulebase's
// state transition table.
type Label string

// The action vocabulary.
const (
	// Robot arm motion.
	MoveRobot       Label = "move_robot"        // move to a location (named or raw coordinates)
	MoveRobotInside Label = "move_robot_inside" // move into a device through its door
	MoveHome        Label = "move_home"         // go_to_home_pose
	MoveSleep       Label = "move_sleep"        // go_to_sleep_pose

	// Semantic manipulation (production wrappers, Table II).
	PickObject  Label = "pick_object"
	PlaceObject Label = "place_object"

	// Gripper-level manipulation (testbed wrappers).
	OpenGripper  Label = "open_gripper"
	CloseGripper Label = "close_gripper"

	// Doors.
	OpenDoor  Label = "open_door"
	CloseDoor Label = "close_door"

	// Action devices (hotplate, thermoshaker, centrifuge, decapper, …).
	StartAction    Label = "start_action"
	StopAction     Label = "stop_action"
	SetActionValue Label = "set_action_value"

	// Dosing systems.
	DoseSolid  Label = "dose_solid"
	DoseLiquid Label = "dose_liquid"

	// Containers.
	CapContainer   Label = "cap_container"
	DecapContainer Label = "decap_container"

	// Substance transfer between containers (general rules 7–8).
	TransferSubstance Label = "transfer_substance"

	// Measurement/status; not safety-relevant but present in traces.
	ReadStatus  Label = "read_status"
	RecordImage Label = "record_image"
)

// RobotMotionLabels lists the labels that the Fig. 2 algorithm treats as
// robot commands (line 8: isRobotCommand) and routes through trajectory
// validation when a simulator is available.
func (l Label) IsRobotMotion() bool {
	switch l {
	case MoveRobot, MoveRobotInside, MoveHome, MoveSleep:
		return true
	default:
		return false
	}
}

// IsManipulation reports whether the label operates a gripper.
func (l Label) IsManipulation() bool {
	switch l {
	case PickObject, PlaceObject, OpenGripper, CloseGripper:
		return true
	default:
		return false
	}
}

// Command is one intercepted device command.
type Command struct {
	// Seq is the position of the command in its experiment script; it is
	// assigned by the interceptor and gives alerts a stable reference.
	Seq int `json:"seq"`
	// Device is the ID of the device executing the command (the arm for
	// motion/gripper commands).
	Device string `json:"device"`
	// Action is the action label.
	Action Label `json:"action"`

	// Target is the Cartesian target for motion commands, expressed in
	// the commanded arm's own base frame (the lab's de-facto convention;
	// the paper keeps per-arm frames after the global-frame attempt
	// failed with ~3 cm error).
	Target geom.Vec3 `json:"target,omitempty"`
	// TargetName is the named deck location being addressed, or "" for a
	// raw-coordinate move. Only named locations are trackable state.
	TargetName string `json:"target_name,omitempty"`
	// InsideDevice is the device being entered for MoveRobotInside, the
	// door owner for door commands, or the device a container is placed
	// into/taken from.
	InsideDevice string `json:"inside_device,omitempty"`
	// Door names which door panel a door command operates, for devices
	// with more than one ("" selects the device's sole door) — the
	// multi-door extension of the paper's Section V-C.
	Door string `json:"door,omitempty"`
	// Object is the container/vial operated on (pick/place/dose/cap).
	Object string `json:"object,omitempty"`
	// FromContainer/ToContainer are the endpoints of a substance
	// transfer.
	FromContainer string `json:"from_container,omitempty"`
	ToContainer   string `json:"to_container,omitempty"`
	// Value is the action magnitude: temperature (°C), stirring speed
	// (rpm), dose amount (mg), or volume (mL), depending on Action.
	Value float64 `json:"value,omitempty"`
	// Roll is the commanded wrist roll for motion commands (0 = gripper
	// fingers straight down). RABIT's geometric model ignores it — the
	// root cause of the undetectable wrong-orientation bug.
	Roll float64 `json:"roll,omitempty"`
	// Duration is an explicit action duration where scripts specify one.
	Duration time.Duration `json:"duration,omitempty"`
}

// String renders the command compactly for alerts and traces.
func (c Command) String() string {
	s := fmt.Sprintf("#%d %s.%s", c.Seq, c.Device, c.Action)
	switch {
	case c.Action.IsRobotMotion():
		if c.TargetName != "" {
			s += fmt.Sprintf("(%s)", c.TargetName)
		} else {
			s += fmt.Sprintf("(%v)", c.Target)
		}
		if c.InsideDevice != "" {
			s += fmt.Sprintf(" inside=%s", c.InsideDevice)
		}
	case c.Action == SetActionValue || c.Action == StartAction ||
		c.Action == DoseSolid || c.Action == DoseLiquid:
		s += fmt.Sprintf("(%.3g)", c.Value)
	case c.Object != "":
		s += fmt.Sprintf("(%s)", c.Object)
	}
	return s
}

// Validate performs basic structural validation (independent of any lab
// state): required fields for the action type.
func (c Command) Validate() error {
	if c.Device == "" {
		return fmt.Errorf("action: command %q has no device", c.Action)
	}
	switch c.Action {
	case MoveRobot:
		if c.TargetName == "" && !c.Target.IsFinite() {
			return fmt.Errorf("action: move_robot needs a finite target or a named location")
		}
	case MoveRobotInside:
		if c.InsideDevice == "" {
			return fmt.Errorf("action: move_robot_inside needs a device")
		}
	case OpenDoor, CloseDoor:
		// Device itself owns the door.
	case DoseSolid, DoseLiquid:
		if c.Value < 0 {
			return fmt.Errorf("action: dose amount must be non-negative, got %v", c.Value)
		}
	case TransferSubstance:
		if c.FromContainer == "" || c.ToContainer == "" {
			return fmt.Errorf("action: transfer needs both containers")
		}
	case SetActionValue:
		// Value may legitimately be zero (e.g. stop heating).
	}
	return nil
}
