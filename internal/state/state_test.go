package state

import (
	"testing"
	"testing/quick"
)

func TestKeyConstruction(t *testing.T) {
	tests := []struct {
		name string
		got  Key
		want string
	}{
		{"plain", MakeKey("systemReady"), "systemReady"},
		{"one-arg", DoorStatus("dosing_device"), "deviceDoorStatus[dosing_device]"},
		{"two-args", ArmInside("viperx", "dosing_device"), "robotArmInside[viperx][dosing_device]"},
		{"holding", Holding("ur3e"), "robotArmHolding[ur3e]"},
		{"object-at", ObjectAt("grid_NW"), "objectAtLocation[grid_NW]"},
		{"red-dot", RedDotNorth("centrifuge"), "redDotFacesNorth[centrifuge]"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if string(tt.got) != tt.want {
				t.Errorf("got %q, want %q", tt.got, tt.want)
			}
		})
	}
}

func TestKeyDecomposition(t *testing.T) {
	k := ArmInside("viperx", "dosing_device")
	if got := k.Variable(); got != "robotArmInside" {
		t.Errorf("Variable() = %q", got)
	}
	args := k.Args()
	if len(args) != 2 || args[0] != "viperx" || args[1] != "dosing_device" {
		t.Errorf("Args() = %v", args)
	}
	plain := MakeKey("ready")
	if plain.Variable() != "ready" || plain.Args() != nil {
		t.Errorf("plain key decomposition wrong: %q %v", plain.Variable(), plain.Args())
	}
}

func TestKeyRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(v string, a, b string) bool {
		// Keys are built from identifier-ish names; exclude brackets.
		for _, s := range []string{v, a, b} {
			for _, r := range s {
				if r == '[' || r == ']' {
					return true
				}
			}
		}
		if v == "" {
			return true
		}
		k := MakeKey(v, a, b)
		args := k.Args()
		return k.Variable() == v && len(args) == 2 && args[0] == a && args[1] == b
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestValueCoercions(t *testing.T) {
	tests := []struct {
		name      string
		v         Value
		wantBool  bool
		wantFloat float64
		wantStr   string
	}{
		{"true", Bool(true), true, 1, "1"},
		{"false", Bool(false), false, 0, "0"},
		{"int", Int(42), true, 42, "42"},
		{"zero-int", Int(0), false, 0, "0"},
		{"float", Float(2.5), true, 2.5, "2.5"},
		{"string", Str("vial_1"), true, 0, "vial_1"},
		{"empty-string", Str(""), false, 0, ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.AsBool(); got != tt.wantBool {
				t.Errorf("AsBool = %v, want %v", got, tt.wantBool)
			}
			if got := tt.v.AsFloat(); got != tt.wantFloat {
				t.Errorf("AsFloat = %v, want %v", got, tt.wantFloat)
			}
			if got := tt.v.String(); got != tt.wantStr {
				t.Errorf("String = %q, want %q", got, tt.wantStr)
			}
		})
	}
}

func TestValueEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Value
		want bool
	}{
		{"bool-eq", Bool(true), Bool(true), true},
		{"bool-ne", Bool(true), Bool(false), false},
		{"int-eq", Int(5), Int(5), true},
		{"float-tolerance", Float(1.0), Float(1.0 + 1e-9), true},
		{"float-differs", Float(1.0), Float(1.1), false},
		{"int-float-cross", Int(3), Float(3.0), true},
		{"string-eq", Str("a"), Str("a"), true},
		{"kind-mismatch", Bool(true), Str("1"), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Errorf("Equal = %v, want %v", got, tt.want)
			}
			if got := tt.b.Equal(tt.a); got != tt.want {
				t.Errorf("Equal not symmetric")
			}
		})
	}
}

func TestSnapshotBasics(t *testing.T) {
	s := Snapshot{}
	s.Set(DoorStatus("dd"), Bool(true))
	s.Set(ArmAt("viperx"), Str("home"))

	if v, ok := s.Get(DoorStatus("dd")); !ok || !v.AsBool() {
		t.Error("Get door status failed")
	}
	if !s.GetBool(DoorStatus("dd")) {
		t.Error("GetBool failed")
	}
	if got := s.GetString(ArmAt("viperx")); got != "home" {
		t.Errorf("GetString = %q", got)
	}
	if s.GetBool(DoorStatus("missing")) {
		t.Error("absent key should be false")
	}
	if got := s.GetString(DoorStatus("dd")); got != "" {
		t.Errorf("GetString on bool = %q, want empty", got)
	}
}

func TestSnapshotCloneIsDeep(t *testing.T) {
	s := Snapshot{DoorStatus("dd"): Bool(true)}
	c := s.Clone()
	c.Set(DoorStatus("dd"), Bool(false))
	if !s.GetBool(DoorStatus("dd")) {
		t.Error("Clone shares storage with original")
	}
}

func TestSnapshotMerge(t *testing.T) {
	s := Snapshot{DoorStatus("dd"): Bool(true), Holding("arm"): Bool(false)}
	o := Snapshot{Holding("arm"): Bool(true)}
	m := s.Merge(o)
	if !m.GetBool(Holding("arm")) {
		t.Error("Merge did not apply overlay")
	}
	if !m.GetBool(DoorStatus("dd")) {
		t.Error("Merge dropped base key")
	}
	if s.GetBool(Holding("arm")) {
		t.Error("Merge mutated receiver")
	}
}

func TestCompareObserved(t *testing.T) {
	expected := Snapshot{
		DoorStatus("dd"):  Bool(true),
		Running("dd"):     Bool(false),
		Holding("viperx"): Bool(true), // model-tracked; not in observed
	}
	observed := Snapshot{
		DoorStatus("dd"): Bool(false), // malfunction: door did not open
		Running("dd"):    Bool(false),
	}
	ms := CompareObserved(expected, observed)
	if len(ms) != 1 {
		t.Fatalf("got %d mismatches, want 1: %v", len(ms), ms)
	}
	if ms[0].Key != DoorStatus("dd") {
		t.Errorf("mismatch key = %v", ms[0].Key)
	}
	if ms[0].Expected.AsBool() != true || ms[0].Actual.AsBool() != false {
		t.Errorf("mismatch values wrong: %v", ms[0])
	}
}

func TestCompareObservedIgnoresUnexpectedKeys(t *testing.T) {
	// An observed variable the model has no opinion on (e.g. a sensor
	// the rulebase does not track) must not raise a malfunction.
	expected := Snapshot{}
	observed := Snapshot{ActionValue("hotplate"): Float(23.5)}
	if ms := CompareObserved(expected, observed); len(ms) != 0 {
		t.Errorf("unexpected mismatches: %v", ms)
	}
}

func TestCompareObservedDeterministicOrder(t *testing.T) {
	expected := Snapshot{
		DoorStatus("a"): Bool(true),
		DoorStatus("b"): Bool(true),
		DoorStatus("c"): Bool(true),
	}
	observed := Snapshot{
		DoorStatus("c"): Bool(false),
		DoorStatus("a"): Bool(false),
		DoorStatus("b"): Bool(false),
	}
	for i := 0; i < 10; i++ {
		ms := CompareObserved(expected, observed)
		if len(ms) != 3 {
			t.Fatalf("want 3 mismatches, got %d", len(ms))
		}
		for j := 0; j+1 < len(ms); j++ {
			if ms[j].Key > ms[j+1].Key {
				t.Fatal("mismatches not sorted")
			}
		}
	}
}

func TestSnapshotKeysSorted(t *testing.T) {
	s := Snapshot{
		MakeKey("zzz"): Bool(true),
		MakeKey("aaa"): Bool(true),
		MakeKey("mmm"): Bool(true),
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "aaa" || keys[1] != "mmm" || keys[2] != "zzz" {
		t.Errorf("Keys() = %v", keys)
	}
}

func TestMismatchString(t *testing.T) {
	m := Mismatch{Key: DoorStatus("dd"), Expected: Bool(true), Actual: Bool(false)}
	want := "deviceDoorStatus[dd]: expected 1, observed 0"
	if got := m.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestExogenousVariablesSkipComparison(t *testing.T) {
	if !ZoneOccupied("s1").IsExogenous() {
		t.Error("zoneOccupied must be exogenous")
	}
	if DoorStatus("dd").IsExogenous() {
		t.Error("door status is command-driven, not exogenous")
	}
	expected := Snapshot{ZoneOccupied("s1"): Bool(false)}
	observed := Snapshot{ZoneOccupied("s1"): Bool(true)}
	if ms := CompareObserved(expected, observed); len(ms) != 0 {
		t.Errorf("exogenous change reported as malfunction: %v", ms)
	}
}
