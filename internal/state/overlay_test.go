package state

import (
	"reflect"
	"testing"
)

func baseSnap() Snapshot {
	return Snapshot{
		DoorStatus("dd"):   Bool(false),
		Running("hp"):      Bool(true),
		ActionValue("hp"):  Float(60),
		HeldObject("arm"):  Str("vial_1"),
		ZoneOccupied("ps"): Bool(false),
	}
}

func TestOverlayReadsFallThrough(t *testing.T) {
	base := baseSnap()
	o := NewOverlay(base)
	if !o.GetBool(Running("hp")) {
		t.Error("unshadowed read did not fall through")
	}
	o.Set(Running("hp"), Bool(false))
	if o.GetBool(Running("hp")) {
		t.Error("shadowed read returned base value")
	}
	if !base.GetBool(Running("hp")) {
		t.Error("overlay write leaked into the base")
	}
	o.Delete(HeldObject("arm"))
	if _, ok := o.Get(HeldObject("arm")); ok {
		t.Error("deleted key still visible")
	}
	if base.GetString(HeldObject("arm")) != "vial_1" {
		t.Error("overlay delete leaked into the base")
	}
	// A set after a delete resurrects the key.
	o.Set(HeldObject("arm"), Str("beaker"))
	if o.GetString(HeldObject("arm")) != "beaker" {
		t.Error("set-after-delete lost the value")
	}
}

func TestOverlayRangeVisitsOnce(t *testing.T) {
	base := baseSnap()
	o := NewOverlay(base)
	o.Set(Running("hp"), Bool(false))   // shadowed
	o.Set(DoorStatus("cf"), Bool(true)) // new
	o.Delete(HeldObject("arm"))         // hidden
	seen := map[Key]Value{}
	o.Range(func(k Key, v Value) bool {
		if _, dup := seen[k]; dup {
			t.Fatalf("key %s visited twice", k)
		}
		seen[k] = v
		return true
	})
	want := Materialize(o)
	if !reflect.DeepEqual(Snapshot(seen), want) {
		t.Errorf("Range saw %v, Materialize says %v", seen, want)
	}
	if _, ok := seen[HeldObject("arm")]; ok {
		t.Error("deleted key visited")
	}
	if v, ok := seen[Running("hp")]; !ok || v.AsBool() {
		t.Error("shadowed key did not report the overlay value")
	}
}

func TestOverlayApplyToChain(t *testing.T) {
	model := baseSnap()
	// Chain two overlays the way the engine chains pending expectations.
	o1 := NewOverlay(model)
	o1.Set(Running("hp"), Bool(false))
	o1.Delete(HeldObject("arm"))
	o2 := NewOverlay(o1)
	o2.Set(DoorStatus("dd"), Bool(true))
	want := Materialize(o2)
	o2.ApplyTo(model)
	if !reflect.DeepEqual(model, want) {
		t.Errorf("ApplyTo produced %v, want %v", model, want)
	}
}

func TestOverlayRangeEditsMatchesApplyTo(t *testing.T) {
	model := baseSnap()
	o1 := NewOverlay(model)
	o1.Set(Running("hp"), Bool(false))
	o1.Delete(HeldObject("arm"))
	o2 := NewOverlay(o1)
	o2.Set(DoorStatus("dd"), Bool(true))
	o2.Set(HeldObject("arm"), Str("beaker")) // resurrects o1's delete

	// Applying the reported edits in order reproduces ApplyTo exactly.
	replayed := baseSnap()
	o2.RangeEdits(func(k Key, v Value, present bool) bool {
		if present {
			replayed[k] = v
		} else {
			delete(replayed, k)
		}
		return true
	})
	want := baseSnap()
	o2.ApplyTo(want)
	if !reflect.DeepEqual(replayed, want) {
		t.Errorf("RangeEdits replay %v != ApplyTo %v", replayed, want)
	}
	// Early stop is honored.
	n := 0
	o2.RangeEdits(func(Key, Value, bool) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop visited %d edits, want 1", n)
	}
}

func TestDeckRelevant(t *testing.T) {
	relevant := []Key{
		DoorStatus("dd"),
		DoorStatusOf("cf", "lid"),
		ArmInside("arm", "dd"),
		Holding("arm"),
		HeldObject("arm"),
	}
	for _, k := range relevant {
		if !k.DeckRelevant() {
			t.Errorf("%s should be deck-relevant", k)
		}
	}
	irrelevant := []Key{
		Running("hp"),
		ActionValue("hp"),
		ArmAt("arm"),
		ArmAsleep("arm"),
		ObjectAt("grid_NW"),
		ContainerInside("cf"),
		SolidAmount("vial_1"),
		ZoneOccupied("ps"),
	}
	for _, k := range irrelevant {
		if k.DeckRelevant() {
			t.Errorf("%s should not be deck-relevant", k)
		}
	}
}

func TestCompareObservedViewMatchesSnapshotCompare(t *testing.T) {
	base := baseSnap()
	o := NewOverlay(base)
	o.Set(Running("hp"), Bool(false))
	o.Set(ActionValue("hp"), Float(80))
	observed := Snapshot{
		Running("hp"):      Bool(true), // mismatch vs overlay
		ActionValue("hp"):  Float(80),  // match
		DoorStatus("dd"):   Bool(true), // mismatch vs base fall-through
		ZoneOccupied("ps"): Bool(true), // exogenous: skipped
		Stopper("vial_9"):  Bool(true), // no expectation: skipped
	}
	got := CompareObservedView(o, observed)
	want := CompareObserved(Materialize(o), observed)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("view compare %v != snapshot compare %v", got, want)
	}
	if len(got) != 2 {
		t.Errorf("want 2 mismatches, got %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key >= got[i].Key {
			t.Error("mismatches not sorted")
		}
	}
}
