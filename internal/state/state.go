// Package state defines the lab-state model RABIT reasons over: typed
// state variables (Section II-A of the paper — e.g. deviceDoorStatus,
// robotArmHolding, robotArmInside), snapshots of those variables, and
// snapshot comparison.
//
// A crucial distinction the paper's evaluation hinges on is observability:
// some variables can be read back from devices with status commands
// (door status, run state, setpoints), while others are only dead-reckoned
// by RABIT's own model (whether a gripper actually holds a vial — the Hein
// Lab has no gripper pressure sensor, which is why Bug C evades detection).
// Snapshot comparison therefore only considers variables present in the
// observed snapshot.
package state

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Key identifies one state variable instance, e.g.
// "deviceDoorStatus[dosing_device]" or "robotArmInside[viperx][dosing_device]".
type Key string

// MakeKey builds a key from a variable name and its qualifiers.
func MakeKey(variable string, args ...string) Key {
	if len(args) == 0 {
		return Key(variable)
	}
	var b strings.Builder
	b.WriteString(variable)
	for _, a := range args {
		b.WriteByte('[')
		b.WriteString(a)
		b.WriteByte(']')
	}
	return Key(b.String())
}

// Variable returns the variable name portion of the key.
func (k Key) Variable() string {
	if i := strings.IndexByte(string(k), '['); i >= 0 {
		return string(k)[:i]
	}
	return string(k)
}

// Args returns the qualifier list of the key.
func (k Key) Args() []string {
	s := string(k)
	i := strings.IndexByte(s, '[')
	if i < 0 {
		return nil
	}
	var args []string
	for i < len(s) {
		if s[i] != '[' {
			break
		}
		j := strings.IndexByte(s[i:], ']')
		if j < 0 {
			break
		}
		args = append(args, s[i+1:i+j])
		i += j + 1
	}
	return args
}

// Standard state-variable constructors. Using constructors (rather than
// raw strings at call sites) keeps the variable vocabulary in one place.

// DoorStatus is 1/open, 0/closed for a device with a door.
func DoorStatus(device string) Key { return MakeKey("deviceDoorStatus", device) }

// DoorStatusOf addresses one named door panel of a multi-door device;
// the empty name selects the device's sole door (same key as DoorStatus).
func DoorStatusOf(device, door string) Key {
	if door == "" {
		return DoorStatus(device)
	}
	return MakeKey("deviceDoorStatus", device, door)
}

// Running reports whether an action device or dosing system is performing
// its action.
func Running(device string) Key { return MakeKey("deviceRunning", device) }

// ActionValue is the device's commanded action magnitude (temperature,
// stirring speed, spin rate).
func ActionValue(device string) Key { return MakeKey("actionValue", device) }

// Holding reports whether a robot arm's gripper holds an object
// (model-tracked; unobservable without a pressure sensor).
func Holding(arm string) Key { return MakeKey("robotArmHolding", arm) }

// HeldObject is the ID of the object a robot arm holds ("" when none).
func HeldObject(arm string) Key { return MakeKey("robotArmHeldObject", arm) }

// ArmInside reports whether a robot arm currently reaches inside a device.
func ArmInside(arm, device string) Key { return MakeKey("robotArmInside", arm, device) }

// ArmAt is the named location tag of a robot arm ("" after a raw-coordinate
// move; named-location tags are the only observable form of arm position).
func ArmAt(arm string) Key { return MakeKey("robotArmLocation", arm) }

// ArmAsleep reports whether a robot arm is folded in its sleep pose.
func ArmAsleep(arm string) Key { return MakeKey("robotArmAsleep", arm) }

// HasSolid reports whether a container holds any solid.
func HasSolid(container string) Key { return MakeKey("containerHasSolid", container) }

// HasLiquid reports whether a container holds any liquid.
func HasLiquid(container string) Key { return MakeKey("containerHasLiquid", container) }

// Stopper reports whether a container has its stopper (cap) on.
func Stopper(container string) Key { return MakeKey("containerStopper", container) }

// ObjectAt is the ID of the object occupying a named location ("" if free).
func ObjectAt(location string) Key { return MakeKey("objectAtLocation", location) }

// ContainerInside is the ID of the container inside a device ("" if none).
func ContainerInside(device string) Key { return MakeKey("containerInside", device) }

// RedDotNorth is the Hein Lab's centrifuge alignment flag (custom rule 3).
func RedDotNorth(device string) Key { return MakeKey("redDotFacesNorth", device) }

// ZoneOccupied reports whether a presence sensor's monitored zone is
// occupied (by a person or an unexpected object) — the sensor device
// class of the paper's Section V-B.
func ZoneOccupied(sensor string) Key { return MakeKey("zoneOccupied", sensor) }

// IsExogenous reports whether a variable changes on its own rather than
// through commands. Exogenous variables feed preconditions but are
// excluded from the S_expected ≠ S_actual malfunction comparison — a
// person walking into a monitored zone is an environment change, not a
// device malfunction.
func (k Key) IsExogenous() bool {
	return k.Variable() == "zoneOccupied"
}

// DeckRelevant reports whether the variable feeds the Extended
// Simulator's collision verdicts: door panels swing obstacle geometry in
// and out of a trajectory's way, an arm reaching inside a device
// suppresses that device's box, and the held object extends the arm's
// swept volume. The simulator's deck epoch must be bumped whenever one
// of these changes — and only then, so cached verdicts survive the
// dead-reckoning writes (amounts, locations, run states) that cannot
// move deck geometry.
func (k Key) DeckRelevant() bool {
	switch k.Variable() {
	case "deviceDoorStatus", "robotArmInside", "robotArmHolding", "robotArmHeldObject":
		return true
	}
	return false
}

// SolidAmount is the model-tracked solid content of a container (mg),
// dead-reckoned from dosing commands.
func SolidAmount(container string) Key { return MakeKey("containerSolidMg", container) }

// LiquidAmount is the model-tracked liquid content of a container (mL).
func LiquidAmount(container string) Key { return MakeKey("containerLiquidML", container) }

// Kind enumerates value types.
type Kind int

// Value kinds.
const (
	KindBool Kind = iota + 1
	KindInt
	KindFloat
	KindString
)

// Value is a typed state-variable value.
type Value struct {
	Kind Kind    `json:"kind"`
	B    bool    `json:"b,omitempty"`
	I    int64   `json:"i,omitempty"`
	F    float64 `json:"f,omitempty"`
	S    string  `json:"s,omitempty"`
}

// Bool, Int, Float and Str construct values.
func Bool(b bool) Value     { return Value{Kind: KindBool, B: b} }
func Int(i int64) Value     { return Value{Kind: KindInt, I: i} }
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }
func Str(s string) Value    { return Value{Kind: KindString, S: s} }

// AsBool coerces the value to a boolean: bools directly, numbers by
// non-zero, strings by non-empty.
func (v Value) AsBool() bool {
	switch v.Kind {
	case KindBool:
		return v.B
	case KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	case KindString:
		return v.S != ""
	default:
		return false
	}
}

// AsFloat coerces the value to a float where meaningful.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindFloat:
		return v.F
	case KindInt:
		return float64(v.I)
	case KindBool:
		if v.B {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// Equal compares two values; floats are compared with a small absolute
// tolerance because device read-backs quantise setpoints.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		// Numeric kinds compare across int/float.
		if (v.Kind == KindInt || v.Kind == KindFloat) && (w.Kind == KindInt || w.Kind == KindFloat) {
			return math.Abs(v.AsFloat()-w.AsFloat()) <= 1e-6
		}
		return false
	}
	switch v.Kind {
	case KindBool:
		return v.B == w.B
	case KindInt:
		return v.I == w.I
	case KindFloat:
		return math.Abs(v.F-w.F) <= 1e-6
	case KindString:
		return v.S == w.S
	default:
		return false
	}
}

// String renders the value for alerts and logs.
func (v Value) String() string {
	switch v.Kind {
	case KindBool:
		if v.B {
			return "1"
		}
		return "0"
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindFloat:
		return fmt.Sprintf("%.4g", v.F)
	case KindString:
		return v.S
	default:
		return "<unset>"
	}
}

// Snapshot is a point-in-time assignment of state variables.
type Snapshot map[Key]Value

// Clone deep-copies the snapshot.
func (s Snapshot) Clone() Snapshot {
	out := make(Snapshot, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Get returns the value and whether it is present.
func (s Snapshot) Get(k Key) (Value, bool) {
	v, ok := s[k]
	return v, ok
}

// GetBool returns the boolean coercion of a key, false when absent.
func (s Snapshot) GetBool(k Key) bool {
	v, ok := s[k]
	return ok && v.AsBool()
}

// GetString returns the string value of a key, "" when absent or non-string.
func (s Snapshot) GetString(k Key) string {
	if v, ok := s[k]; ok && v.Kind == KindString {
		return v.S
	}
	return ""
}

// Range calls fn for every variable until fn returns false. Iteration
// order is unspecified, like the underlying map's.
func (s Snapshot) Range(fn func(Key, Value) bool) {
	for k, v := range s {
		if !fn(k, v) {
			return
		}
	}
}

// Set assigns a value.
func (s Snapshot) Set(k Key, v Value) { s[k] = v }

// Delete removes a variable: the model holds no opinion about it, so the
// malfunction comparison will skip it.
func (s Snapshot) Delete(k Key) { delete(s, k) }

// Mismatch describes one variable whose observed value differs from the
// expected value.
type Mismatch struct {
	Key      Key
	Expected Value
	Actual   Value
}

// String renders the mismatch for alert messages.
func (m Mismatch) String() string {
	return fmt.Sprintf("%s: expected %v, observed %v", m.Key, m.Expected, m.Actual)
}

// CompareObserved compares an expected snapshot against an observed one,
// only over keys that the observed snapshot actually contains (Fig. 2,
// lines 13–15: S_actual is acquired via status commands, so unobservable
// variables never participate). Mismatches are returned sorted by key for
// deterministic alerts.
func CompareObserved(expected, observed Snapshot) []Mismatch {
	return CompareObservedView(expected, observed)
}

// CompareObservedView is CompareObserved over any expected-state view —
// the hot-path form, letting the engine compare a copy-on-write Overlay
// without first materializing it into a flat snapshot.
func CompareObservedView(expected View, observed Snapshot) []Mismatch {
	var out []Mismatch
	for k, actual := range observed {
		if k.IsExogenous() {
			continue
		}
		exp, ok := expected.Get(k)
		if !ok {
			// The model has no opinion on this variable; skip.
			continue
		}
		if !exp.Equal(actual) {
			out = append(out, Mismatch{Key: k, Expected: exp, Actual: actual})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Merge overlays o onto s, returning a new snapshot. Values in o win.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := s.Clone()
	for k, v := range o {
		out[k] = v
	}
	return out
}

// Keys returns the sorted key list, for deterministic iteration.
func (s Snapshot) Keys() []Key {
	keys := make([]Key, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
