package state

// View is the read side of a state assignment. Both the flat Snapshot
// and the layered Overlay satisfy it; rule preconditions and snapshot
// comparison are written against View so the engine can evaluate them
// over a copy-on-write expectation without materializing it.
type View interface {
	// Get returns the value and whether it is present.
	Get(k Key) (Value, bool)
	// GetBool returns the boolean coercion of a key, false when absent.
	GetBool(k Key) bool
	// GetString returns the string value of a key, "" when absent or
	// non-string.
	GetString(k Key) string
	// Range calls fn for every variable until fn returns false. A key is
	// visited at most once; iteration order is unspecified.
	Range(fn func(Key, Value) bool)
}

// Store is a mutable View. The transition table writes S_expected
// through this interface, so it can target either a cloned Snapshot or
// an Overlay layered over the live model.
type Store interface {
	View
	Set(k Key, v Value)
	Delete(k Key)
}

var (
	_ Store = Snapshot{}
	_ Store = (*Overlay)(nil)
)

// Overlay is a copy-on-write layer over a base view: reads fall through
// to the base, writes and deletes land in the layer. The engine builds
// S_expected as an Overlay over S_current, so computing and committing an
// expectation allocates proportionally to the command's effects instead
// of the whole deck's state.
//
// An Overlay is not safe for concurrent use, and reads are only as
// stable as its base: callers who share the base map across goroutines
// must hold their own lock around Overlay reads.
type Overlay struct {
	base View
	mods Snapshot
	dels map[Key]bool
}

// NewOverlay layers an empty copy-on-write overlay over base.
func NewOverlay(base View) *Overlay {
	return &Overlay{base: base, mods: Snapshot{}}
}

// Base returns the view the overlay is layered over.
func (o *Overlay) Base() View { return o.base }

// Get implements View.
func (o *Overlay) Get(k Key) (Value, bool) {
	if v, ok := o.mods[k]; ok {
		return v, true
	}
	if o.dels[k] {
		return Value{}, false
	}
	return o.base.Get(k)
}

// GetBool implements View.
func (o *Overlay) GetBool(k Key) bool {
	v, ok := o.Get(k)
	return ok && v.AsBool()
}

// GetString implements View.
func (o *Overlay) GetString(k Key) string {
	if v, ok := o.Get(k); ok && v.Kind == KindString {
		return v.S
	}
	return ""
}

// Set implements Store: the write lands in the overlay's own layer.
func (o *Overlay) Set(k Key, v Value) {
	delete(o.dels, k)
	o.mods[k] = v
}

// Delete implements Store: the base is untouched; the overlay merely
// stops reporting the key.
func (o *Overlay) Delete(k Key) {
	delete(o.mods, k)
	if o.dels == nil {
		o.dels = map[Key]bool{}
	}
	o.dels[k] = true
}

// Range implements View: base variables not shadowed by the layer, then
// the layer's own writes.
func (o *Overlay) Range(fn func(Key, Value) bool) {
	stopped := false
	o.base.Range(func(k Key, v Value) bool {
		if o.dels[k] {
			return true
		}
		if _, shadowed := o.mods[k]; shadowed {
			return true
		}
		if !fn(k, v) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for k, v := range o.mods {
		if !fn(k, v) {
			return
		}
	}
}

// ApplyTo writes the overlay's accumulated edits — and those of any
// overlay layers beneath it, bottom-up — into dst. The Snapshot at the
// bottom of the chain is NOT copied: ApplyTo is the commit operation for
// an expectation layered over the live model, where dst is that very
// model and copying it into itself would be wasted work.
func (o *Overlay) ApplyTo(dst Snapshot) {
	if base, ok := o.base.(*Overlay); ok {
		base.ApplyTo(dst)
	}
	for k := range o.dels {
		delete(dst, k)
	}
	for k, v := range o.mods {
		dst[k] = v
	}
}

// RangeEdits visits the overlay's accumulated edits — and those of any
// overlay layers beneath it, bottom-up, the order ApplyTo commits them —
// without touching the base snapshot at the bottom. Sets are reported
// with present=true and the value; deletes with present=false. fn
// returning false stops the walk. Commit paths use this to inspect what
// an expectation is about to change (deck-epoch invalidation) while
// applying it.
func (o *Overlay) RangeEdits(fn func(k Key, v Value, present bool) bool) {
	if base, ok := o.base.(*Overlay); ok {
		stopped := false
		base.RangeEdits(func(k Key, v Value, present bool) bool {
			if !fn(k, v, present) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
	for k := range o.dels {
		if !fn(k, Value{}, false) {
			return
		}
	}
	for k, v := range o.mods {
		if !fn(k, v, true) {
			return
		}
	}
}

// Materialize flattens any view into a standalone Snapshot.
func Materialize(v View) Snapshot {
	if s, ok := v.(Snapshot); ok {
		return s.Clone()
	}
	out := Snapshot{}
	v.Range(func(k Key, val Value) bool {
		out[k] = val
		return true
	})
	return out
}
