package rules

import (
	"fmt"
	"sort"

	"repro/internal/action"
	"repro/internal/state"
)

// Rulebase is the complete set of rules the engine validates commands
// against. At construction it precompiles an index from action label to
// the ordered list of rules that can fire for that label, so Validate
// evaluates only the applicable slice of the table instead of scanning
// every rule per command.
type Rulebase struct {
	rules []*Rule
	lab   LabModel
	cfg   Config

	// byID resolves rules in O(1); duplicate IDs are a construction
	// error, not a silent shadowing.
	byID map[string]*Rule
	// byLabel maps an action label to the rules that can fire for it —
	// rules declaring the label plus every catch-all rule, interleaved
	// at their sorted (Scope, Number) positions so violation order is
	// identical to a full scan.
	byLabel map[action.Label][]*Rule
	// catchAll lists the rules with no Labels declaration; they guard
	// commands whose label no rule declares.
	catchAll []*Rule
	// globalReads marks labels whose bucket contains at least one rule
	// reading beyond the command's own devices (ReadsGlobal); commands
	// with such labels must be validated under the engine's global lock.
	globalReads map[action.Label]bool
}

// NewRulebase assembles a rulebase: the general rules always, plus any
// custom rules, plus the multiplexing preconditions when the modified
// generation is configured. It returns an error if two rules share an ID.
func NewRulebase(lab LabModel, cfg Config, custom ...*Rule) (*Rulebase, error) {
	rb := &Rulebase{lab: lab, cfg: cfg}
	rb.rules = append(rb.rules, GeneralRules()...)
	rb.rules = append(rb.rules, custom...)
	if cfg.Generation >= GenModified {
		rb.rules = append(rb.rules, MultiplexRules(cfg.Multiplex)...)
	}
	sort.SliceStable(rb.rules, func(i, j int) bool {
		if rb.rules[i].Scope != rb.rules[j].Scope {
			return rb.rules[i].Scope < rb.rules[j].Scope
		}
		return rb.rules[i].Number < rb.rules[j].Number
	})
	rb.byID = make(map[string]*Rule, len(rb.rules))
	for i, r := range rb.rules {
		r.index = i
		if r.ID == "" {
			return nil, fmt.Errorf("rules: rule %q (%s #%d) has no ID", r.Description, r.Scope, r.Number)
		}
		if prev, dup := rb.byID[r.ID]; dup {
			return nil, fmt.Errorf("rules: duplicate rule ID %q (%s #%d and %s #%d)",
				r.ID, prev.Scope, prev.Number, r.Scope, r.Number)
		}
		rb.byID[r.ID] = r
		if len(r.Devices) > 0 {
			r.deviceSet = make(map[string]bool, len(r.Devices))
			for _, d := range r.Devices {
				r.deviceSet[d] = true
			}
		}
	}
	rb.buildIndex()
	return rb, nil
}

// MustNewRulebase is NewRulebase for statically known rule sets whose IDs
// cannot collide (tests, benchmarks, the built-in labs).
func MustNewRulebase(lab LabModel, cfg Config, custom ...*Rule) *Rulebase {
	rb, err := NewRulebase(lab, cfg, custom...)
	if err != nil {
		panic(err)
	}
	return rb
}

// buildIndex precompiles the per-label rule lists and the per-label
// global-read flags.
func (rb *Rulebase) buildIndex() {
	labels := map[action.Label]bool{}
	for _, r := range rb.rules {
		for _, l := range r.Labels {
			labels[l] = true
		}
		if r.Labels == nil {
			rb.catchAll = append(rb.catchAll, r)
		}
	}
	rb.byLabel = make(map[action.Label][]*Rule, len(labels))
	rb.globalReads = make(map[action.Label]bool, len(labels))
	for l := range labels {
		var bucket []*Rule
		global := false
		// One pass over the sorted rule list keeps bucket order — and
		// therefore violation order — identical to a full scan.
		for _, r := range rb.rules {
			if !r.declares(l) {
				continue
			}
			bucket = append(bucket, r)
			if r.Reads == ReadsGlobal {
				global = true
			}
		}
		rb.byLabel[l] = bucket
		rb.globalReads[l] = global
	}
}

// declares reports whether the rule belongs in the label's bucket: it
// declares the label, or it is a catch-all.
func (r *Rule) declares(l action.Label) bool {
	if r.Labels == nil {
		return true
	}
	for _, own := range r.Labels {
		if own == l {
			return true
		}
	}
	return false
}

// Config returns the engine configuration the rulebase was built with.
func (rb *Rulebase) Config() Config { return rb.cfg }

// Lab returns the lab model.
func (rb *Rulebase) Lab() LabModel { return rb.lab }

// Rules returns the rules, ordered by scope and number.
func (rb *Rulebase) Rules() []*Rule {
	out := make([]*Rule, len(rb.rules))
	copy(out, rb.rules)
	return out
}

// RuleByID finds a rule.
func (rb *Rulebase) RuleByID(id string) (*Rule, bool) {
	r, ok := rb.byID[id]
	return r, ok
}

// RulesFor returns the precompiled, ordered rule list that can fire for
// an action label: the label's declared rules plus the catch-alls (only
// the catch-alls when no rule declares the label). The slice is shared;
// callers must not mutate it.
func (rb *Rulebase) RulesFor(label action.Label) []*Rule {
	if bucket, ok := rb.byLabel[label]; ok {
		return bucket
	}
	return rb.catchAll
}

// LabelReadsGlobal reports whether validating a command with this label
// may read state of devices the command does not name — the signal the
// engine uses to route such commands through its global section instead
// of a per-device shard.
func (rb *Rulebase) LabelReadsGlobal(label action.Label) bool {
	if g, ok := rb.globalReads[label]; ok {
		return g
	}
	// Labels nothing indexes still run the catch-alls, whose reads are
	// unknown; stay conservative if any exist.
	for _, r := range rb.catchAll {
		if r.Reads == ReadsGlobal {
			return true
		}
	}
	return false
}

// Validate implements Valid(S_current, a_next) from Fig. 2, line 6: it
// evaluates every applicable rule and returns all violations (empty when
// the command is safe). Only the indexed bucket for the command's label
// is evaluated; AppliesTo still runs per rule, so the index is purely a
// pruning layer and verdicts match a full table scan exactly.
func (rb *Rulebase) Validate(s state.View, cmd action.Command) []Violation {
	ctx := &EvalContext{State: s, Cmd: cmd, Lab: rb.lab, Cfg: rb.cfg}
	var out []Violation
	for _, r := range rb.RulesFor(cmd.Action) {
		if !r.matchesDevice(cmd) {
			continue
		}
		if v := r.Evaluate(ctx); v != nil {
			out = append(out, *v)
		}
	}
	return out
}

// AppliedRuleIDs lists the IDs of the rules Validate evaluates for a
// command — its label's indexed bucket filtered to matching devices.
// The flight recorder stamps them into each command's record as the
// provenance of its validation.
func (rb *Rulebase) AppliedRuleIDs(cmd action.Command) []string {
	rs := rb.RulesFor(cmd.Action)
	out := make([]string, 0, len(rs))
	for _, r := range rs {
		if r.matchesDevice(cmd) {
			out = append(out, r.ID)
		}
	}
	return out
}

// Expected implements UpdateState(S_current, a_next) from Fig. 2,
// line 11.
func (rb *Rulebase) Expected(s state.Snapshot, cmd action.Command) state.Snapshot {
	return Apply(s, cmd, rb.lab)
}

// ExpectedOverlay computes S_expected as a copy-on-write layer over base
// — the allocation-free-ish hot-path form of Expected.
func (rb *Rulebase) ExpectedOverlay(base state.View, cmd action.Command) *state.Overlay {
	return ApplyOverlay(base, cmd, rb.lab)
}
