package rules

import (
	"sort"

	"repro/internal/action"
	"repro/internal/state"
)

// Rulebase is the complete set of rules the engine validates commands
// against.
type Rulebase struct {
	rules []*Rule
	lab   LabModel
	cfg   Config
}

// NewRulebase assembles a rulebase: the general rules always, plus any
// custom rules, plus the multiplexing preconditions when the modified
// generation is configured.
func NewRulebase(lab LabModel, cfg Config, custom ...*Rule) *Rulebase {
	rb := &Rulebase{lab: lab, cfg: cfg}
	rb.rules = append(rb.rules, GeneralRules()...)
	rb.rules = append(rb.rules, custom...)
	if cfg.Generation >= GenModified {
		rb.rules = append(rb.rules, MultiplexRules(cfg.Multiplex)...)
	}
	sort.SliceStable(rb.rules, func(i, j int) bool {
		if rb.rules[i].Scope != rb.rules[j].Scope {
			return rb.rules[i].Scope < rb.rules[j].Scope
		}
		return rb.rules[i].Number < rb.rules[j].Number
	})
	return rb
}

// Config returns the engine configuration the rulebase was built with.
func (rb *Rulebase) Config() Config { return rb.cfg }

// Lab returns the lab model.
func (rb *Rulebase) Lab() LabModel { return rb.lab }

// Rules returns the rules, ordered by scope and number.
func (rb *Rulebase) Rules() []*Rule {
	out := make([]*Rule, len(rb.rules))
	copy(out, rb.rules)
	return out
}

// RuleByID finds a rule.
func (rb *Rulebase) RuleByID(id string) (*Rule, bool) {
	for _, r := range rb.rules {
		if r.ID == id {
			return r, true
		}
	}
	return nil, false
}

// Validate implements Valid(S_current, a_next) from Fig. 2, line 6: it
// evaluates every applicable rule and returns all violations (empty when
// the command is safe).
func (rb *Rulebase) Validate(s state.Snapshot, cmd action.Command) []Violation {
	ctx := &EvalContext{State: s, Cmd: cmd, Lab: rb.lab, Cfg: rb.cfg}
	var out []Violation
	for _, r := range rb.rules {
		if v := r.Evaluate(ctx); v != nil {
			out = append(out, *v)
		}
	}
	return out
}

// Expected implements UpdateState(S_current, a_next) from Fig. 2,
// line 11.
func (rb *Rulebase) Expected(s state.Snapshot, cmd action.Command) state.Snapshot {
	return Apply(s, cmd, rb.lab)
}
