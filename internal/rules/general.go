package rules

import (
	"fmt"

	"repro/internal/action"
	"repro/internal/state"
)

// GeneralRules returns the eleven general rules of Table III, plus the
// Table II transition-table preconditions that are not themselves
// numbered rules (semantic place requires holding). The rules are fresh
// instances so callers may filter or annotate them freely.
func GeneralRules() []*Rule {
	return []*Rule{
		generalRule1(),
		generalRule2(),
		generalRule3(),
		generalRule4(),
		generalRule5(),
		generalRule6(),
		generalRule7(),
		generalRule8(),
		generalRule9(),
		generalRule10(),
		generalRule11(),
		tableIIPlaceNeedsHolding(),
	}
}

// targetDoorDevice resolves which device's door guards a motion command.
func targetDoorDevice(ctx *EvalContext) string {
	if ctx.Cmd.InsideDevice != "" {
		return ctx.Cmd.InsideDevice
	}
	if ctx.Cmd.TargetName != "" && ctx.Lab.LocationIsInside(ctx.Cmd.TargetName) {
		if owner, ok := ctx.Lab.LocationOwner(ctx.Cmd.TargetName); ok {
			return owner
		}
	}
	return ""
}

// Rule 1: Robot arm cannot move into a device whose door is closed.
func generalRule1() *Rule {
	return &Rule{
		ID: "general-1", Scope: ScopeGeneral, Number: 1,
		Description: "Robot arm cannot move into a device whose door is closed",
		Labels:      []action.Label{action.MoveRobotInside, action.MoveRobot},
		Check: func(ctx *EvalContext) string {
			dev := targetDoorDevice(ctx)
			if dev == "" || !ctx.Lab.DeviceHasDoor(dev) {
				return ""
			}
			door := ctx.Lab.LocationDoor(ctx.Cmd.TargetName)
			if !ctx.State.GetBool(state.DoorStatusOf(dev, door)) {
				if door != "" {
					return fmt.Sprintf("door %q of %s is closed", door, dev)
				}
				return fmt.Sprintf("door of %s is closed", dev)
			}
			return ""
		},
	}
}

// Rule 2: Device door cannot be closed when the robot is inside the device.
func generalRule2() *Rule {
	return &Rule{
		ID: "general-2", Scope: ScopeGeneral, Number: 2,
		Description: "Device door cannot be closed when the robot is inside the device",
		Labels:      []action.Label{action.CloseDoor},
		Check: func(ctx *EvalContext) string {
			for _, arm := range ctx.Lab.ArmIDs() {
				if ctx.State.GetBool(state.ArmInside(arm, ctx.Cmd.Device)) {
					return fmt.Sprintf("arm %s is inside %s", arm, ctx.Cmd.Device)
				}
			}
			return ""
		},
	}
}

// Rule 3: Robot arm can move to any location not occupied by any object.
func generalRule3() *Rule {
	return &Rule{
		ID: "general-3", Scope: ScopeGeneral, Number: 3,
		Description: "Robot arm can move to any location not occupied by any object",
		Labels:      []action.Label{action.MoveRobot, action.MoveRobotInside},
		Check: func(ctx *EvalContext) string {
			if ctx.Cmd.TargetName != "" {
				occupant := ctx.State.GetString(state.ObjectAt(ctx.Cmd.TargetName))
				if occupant != "" && occupant != ctx.Cmd.Object {
					return fmt.Sprintf("location %s is occupied by %s", ctx.Cmd.TargetName, occupant)
				}
			}
			return checkTargetGeometry(ctx)
		},
	}
}

// Rule 4: Robot arm can pick up an object when it isn't holding something.
func generalRule4() *Rule {
	return &Rule{
		ID: "general-4", Scope: ScopeGeneral, Number: 4,
		Description: "Robot arm can pick up an object when it isn't holding something",
		Labels:      []action.Label{action.PickObject, action.CloseGripper},
		Reads:       ReadsCommand,
		Check: func(ctx *EvalContext) string {
			if ctx.State.GetBool(state.Holding(ctx.Cmd.Device)) {
				return fmt.Sprintf("arm %s is already holding %s",
					ctx.Cmd.Device, ctx.State.GetString(state.HeldObject(ctx.Cmd.Device)))
			}
			return ""
		},
	}
}

// Rule 5: Action device can perform actions when a container is inside it.
func generalRule5() *Rule {
	return &Rule{
		ID: "general-5", Scope: ScopeGeneral, Number: 5,
		Description: "Action device can perform actions when a container is inside it",
		Labels:      []action.Label{action.StartAction},
		Reads:       ReadsCommand,
		Check: func(ctx *EvalContext) string {
			if t, ok := ctx.Lab.DeviceType(ctx.Cmd.Device); !ok || t != TypeActionDevice {
				return ""
			}
			if !ctx.Lab.HostsContainers(ctx.Cmd.Device) {
				return "" // nozzles and the like act on nothing held inside
			}
			if ctx.State.GetString(state.ContainerInside(ctx.Cmd.Device)) == "" {
				return fmt.Sprintf("no container is in %s", ctx.Cmd.Device)
			}
			return ""
		},
	}
}

// Rule 6: Action device can perform actions when a container is not empty.
func generalRule6() *Rule {
	return &Rule{
		ID: "general-6", Scope: ScopeGeneral, Number: 6,
		Description: "Action device can perform actions when a container is not empty",
		Labels:      []action.Label{action.StartAction},
		Reads:       ReadsCommand,
		Check: func(ctx *EvalContext) string {
			if t, ok := ctx.Lab.DeviceType(ctx.Cmd.Device); !ok || t != TypeActionDevice {
				return ""
			}
			if !ctx.Lab.HostsContainers(ctx.Cmd.Device) {
				return ""
			}
			c := ctx.State.GetString(state.ContainerInside(ctx.Cmd.Device))
			if c == "" {
				return "" // rule 5's concern
			}
			if !ctx.State.GetBool(state.HasSolid(c)) && !ctx.State.GetBool(state.HasLiquid(c)) {
				return fmt.Sprintf("container %s in %s is empty", c, ctx.Cmd.Device)
			}
			return ""
		},
	}
}

// Rule 7: A substance can be transferred from a delivering container to a
// receiving container when neither has a stopper on it.
func generalRule7() *Rule {
	return &Rule{
		ID: "general-7", Scope: ScopeGeneral, Number: 7,
		Description: "A substance can be transferred only when neither container has a stopper on it",
		Labels:      []action.Label{action.TransferSubstance},
		Reads:       ReadsCommand,
		Check: func(ctx *EvalContext) string {
			if ctx.State.GetBool(state.Stopper(ctx.Cmd.FromContainer)) {
				return fmt.Sprintf("delivering container %s has its stopper on", ctx.Cmd.FromContainer)
			}
			if ctx.State.GetBool(state.Stopper(ctx.Cmd.ToContainer)) {
				return fmt.Sprintf("receiving container %s has its stopper on", ctx.Cmd.ToContainer)
			}
			return ""
		},
	}
}

// Rule 8: A substance can be transferred from a filled delivering
// container to an empty or partially filled receiving container. The same
// capacity logic guards dosing commands (the pilot-study scenario where a
// dose exceeded the vial's capacity).
func generalRule8() *Rule {
	return &Rule{
		ID: "general-8", Scope: ScopeGeneral, Number: 8,
		Description: "Substance transfer requires a filled delivering container and room in the receiving container",
		Labels:      []action.Label{action.TransferSubstance, action.DoseSolid, action.DoseLiquid},
		Reads:       ReadsCommand,
		Check: func(ctx *EvalContext) string {
			switch ctx.Cmd.Action {
			case action.TransferSubstance:
				if !ctx.State.GetBool(state.HasLiquid(ctx.Cmd.FromContainer)) {
					return fmt.Sprintf("delivering container %s is empty", ctx.Cmd.FromContainer)
				}
				return checkRoom(ctx, ctx.Cmd.ToContainer, 0, ctx.Cmd.Value)
			case action.DoseSolid:
				c := dosedContainer(ctx)
				if c == "" {
					return "" // no container known; rules 5/9 and the workflow guard this
				}
				return checkRoom(ctx, c, ctx.Cmd.Value, 0)
			case action.DoseLiquid:
				c := dosedContainer(ctx)
				if c == "" {
					return ""
				}
				return checkRoom(ctx, c, 0, ctx.Cmd.Value)
			default:
				return ""
			}
		},
		Margin: func(ctx *EvalContext) (float64, bool) {
			switch ctx.Cmd.Action {
			case action.TransferSubstance:
				return marginRoom(ctx, ctx.Cmd.ToContainer, 0, ctx.Cmd.Value)
			case action.DoseSolid:
				if c := dosedContainer(ctx); c != "" {
					return marginRoom(ctx, c, ctx.Cmd.Value, 0)
				}
			case action.DoseLiquid:
				if c := dosedContainer(ctx); c != "" {
					return marginRoom(ctx, c, 0, ctx.Cmd.Value)
				}
			}
			return 0, false
		},
	}
}

// marginRoom is checkRoom's near-miss companion: the remaining headroom
// of the tightest applicable capacity, as a fraction of that capacity.
// 0 means the dose lands exactly at the limit; ok=false means no
// capacity is configured for the dimensions being added.
func marginRoom(ctx *EvalContext, container string, addMg, addML float64) (float64, bool) {
	og, ok := ctx.Lab.ObjectGeometry(container)
	if !ok {
		return 0, false
	}
	margin, has := 1.0, false
	if addMg > 0 && og.CapacityMg > 0 {
		cur := 0.0
		if v, ok := ctx.State.Get(state.SolidAmount(container)); ok {
			cur = v.AsFloat()
		}
		if m := (og.CapacityMg - (cur + addMg)) / og.CapacityMg; !has || m < margin {
			margin = m
		}
		has = true
	}
	if addML > 0 && og.CapacityML > 0 {
		cur := 0.0
		if v, ok := ctx.State.Get(state.LiquidAmount(container)); ok {
			cur = v.AsFloat()
		}
		if m := (og.CapacityML - (cur + addML)) / og.CapacityML; !has || m < margin {
			margin = m
		}
		has = true
	}
	return margin, has
}

// checkRoom validates that the receiving container has room for the added
// amounts, using the model-tracked contents and configured capacities.
func checkRoom(ctx *EvalContext, container string, addMg, addML float64) string {
	og, ok := ctx.Lab.ObjectGeometry(container)
	if !ok {
		return ""
	}
	if addMg > 0 && og.CapacityMg > 0 {
		cur := 0.0
		if v, ok := ctx.State.Get(state.SolidAmount(container)); ok {
			cur = v.AsFloat()
		}
		if cur+addMg > og.CapacityMg {
			return fmt.Sprintf("dosing %.1f mg would exceed %s's capacity (%.1f/%.1f mg)",
				addMg, container, cur, og.CapacityMg)
		}
	}
	if addML > 0 && og.CapacityML > 0 {
		cur := 0.0
		if v, ok := ctx.State.Get(state.LiquidAmount(container)); ok {
			cur = v.AsFloat()
		}
		if cur+addML > og.CapacityML {
			return fmt.Sprintf("adding %.1f mL would exceed %s's capacity (%.1f/%.1f mL)",
				addML, container, cur, og.CapacityML)
		}
	}
	return ""
}

// Rule 9: Dosing systems or action devices with doors should start dosing
// or performing an action only when their doors are closed.
func generalRule9() *Rule {
	return &Rule{
		ID: "general-9", Scope: ScopeGeneral, Number: 9,
		Description: "Devices with doors must start dosing/actions only when their doors are closed",
		Labels:      []action.Label{action.StartAction, action.DoseSolid},
		Reads:       ReadsCommand,
		Check: func(ctx *EvalContext) string {
			for _, door := range ctx.Lab.DeviceDoors(ctx.Cmd.Device) {
				if ctx.State.GetBool(state.DoorStatusOf(ctx.Cmd.Device, door)) {
					if door != "" {
						return fmt.Sprintf("door %q of %s is open", door, ctx.Cmd.Device)
					}
					return fmt.Sprintf("door of %s is open", ctx.Cmd.Device)
				}
			}
			return ""
		},
	}
}

// Rule 10: The door of dosing systems or action devices with doors should
// be closed (i.e. must not be opened) while they are running.
func generalRule10() *Rule {
	return &Rule{
		ID: "general-10", Scope: ScopeGeneral, Number: 10,
		Description: "Device doors must stay closed while the device is running",
		Labels:      []action.Label{action.OpenDoor},
		Reads:       ReadsCommand,
		Check: func(ctx *EvalContext) string {
			if ctx.State.GetBool(state.Running(ctx.Cmd.Device)) {
				return fmt.Sprintf("%s is running", ctx.Cmd.Device)
			}
			return ""
		},
	}
}

// Rule 11: The action value for a given action device must not exceed its
// predefined threshold.
func generalRule11() *Rule {
	return &Rule{
		ID: "general-11", Scope: ScopeGeneral, Number: 11,
		Description: "Action values must not exceed the device's predefined threshold",
		Labels:      []action.Label{action.SetActionValue, action.StartAction},
		Reads:       ReadsCommand,
		Check: func(ctx *EvalContext) string {
			limit, ok := ctx.Lab.ActionThreshold(ctx.Cmd.Device)
			if !ok {
				return ""
			}
			val := ctx.Cmd.Value
			if ctx.Cmd.Action == action.StartAction {
				if v, ok := ctx.State.Get(state.ActionValue(ctx.Cmd.Device)); ok {
					val = v.AsFloat()
				} else {
					return ""
				}
			}
			if val > limit {
				return fmt.Sprintf("action value %.1f exceeds %s's threshold %.1f", val, ctx.Cmd.Device, limit)
			}
			return ""
		},
		Margin: func(ctx *EvalContext) (float64, bool) {
			limit, ok := ctx.Lab.ActionThreshold(ctx.Cmd.Device)
			if !ok || limit <= 0 {
				return 0, false
			}
			val := ctx.Cmd.Value
			if ctx.Cmd.Action == action.StartAction {
				v, ok := ctx.State.Get(state.ActionValue(ctx.Cmd.Device))
				if !ok {
					return 0, false
				}
				val = v.AsFloat()
			}
			return (limit - val) / limit, true
		},
	}
}

// tableIIPlaceNeedsHolding encodes the Table II place_object precondition
// (robotArmHolding = 1). It guards only the *semantic* production-level
// place action; the testbed's raw open_gripper command has no such
// precondition — which is exactly why the paper's Bug C (a deleted
// pick-up call) slips past RABIT on the testbed.
func tableIIPlaceNeedsHolding() *Rule {
	return &Rule{
		ID: "table2-place", Scope: ScopeGeneral, Number: 0,
		Description: "place_object requires the arm to be holding an object (Table II precondition)",
		Labels:      []action.Label{action.PlaceObject},
		Reads:       ReadsCommand,
		Check: func(ctx *EvalContext) string {
			if !ctx.State.GetBool(state.Holding(ctx.Cmd.Device)) {
				return fmt.Sprintf("arm %s is not holding anything", ctx.Cmd.Device)
			}
			return ""
		},
	}
}
