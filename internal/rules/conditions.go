package rules

import (
	"fmt"

	"repro/internal/action"
	"repro/internal/geom"
	"repro/internal/state"
)

// NormalizeCommand re-derives RABIT's view of a raw scripted command:
// experiment scripts carry their own location tables and send raw
// coordinates; RABIT matches them against its configured locations to
// recover the named location, the inside-a-device relationship, and the
// move_robot_inside labelling. A script-side coordinate edit (Fig. 6's
// Bug D) breaks the match and silently degrades the move to an untracked
// raw one — faithfully reproducing the paper's observability gap.
func NormalizeCommand(lab LabModel, cmd action.Command) action.Command {
	if !cmd.Action.IsRobotMotion() {
		return cmd
	}
	if cmd.TargetName == "" && cmd.Target.IsFinite() {
		if name, ok := lab.MatchLocation(cmd.Device, cmd.Target); ok {
			cmd.TargetName = name
		}
	}
	if cmd.TargetName != "" && cmd.Action == action.MoveRobot && lab.LocationIsInside(cmd.TargetName) {
		if owner, ok := lab.LocationOwner(cmd.TargetName); ok {
			cmd.Action = action.MoveRobotInside
			cmd.InsideDevice = owner
		}
	}
	return cmd
}

// resolveTarget returns the motion command's target position in the
// commanded arm's frame, preferring the named location's configured
// coordinates.
func resolveTarget(ctx *EvalContext) (geom.Vec3, bool) {
	if ctx.Cmd.TargetName != "" {
		if p, ok := ctx.Lab.LocationPos(ctx.Cmd.Device, ctx.Cmd.TargetName); ok {
			return p, true
		}
		return geom.Vec3{}, false
	}
	if ctx.Cmd.Target.IsFinite() {
		return ctx.Cmd.Target, true
	}
	return geom.Vec3{}, false
}

// heldObjectOf returns the object the model believes the arm is holding.
func heldObjectOf(ctx *EvalContext, armID string) string {
	if !ctx.State.GetBool(state.Holding(armID)) {
		return ""
	}
	return ctx.State.GetString(state.HeldObject(armID))
}

// armVolumesAtTarget builds the capsules RABIT models the arm with when
// its TCP sits at the target: the gripper assembly reaching down, plus —
// only for the modified generation — the held object hanging below.
func armVolumesAtTarget(ctx *EvalContext, target geom.Vec3) []geom.Capsule {
	g := ctx.Lab.ArmGeometry(ctx.Cmd.Device)
	drop := g.FingerReach - g.FingerRadius
	if drop < 0 {
		drop = 0
	}
	caps := []geom.Capsule{
		geom.NewCapsule(target, target.Add(geom.V(0, 0, -drop)), g.FingerRadius),
	}
	if ctx.Cfg.HeldObjectAware() {
		if held := heldObjectOf(ctx, ctx.Cmd.Device); held != "" {
			if og, ok := ctx.Lab.ObjectGeometry(held); ok {
				hang := og.CarriedHang - og.Radius
				if hang < 0 {
					hang = 0
				}
				caps = append(caps, geom.NewCapsule(target,
					target.Add(geom.V(0, 0, -hang)), og.Radius))
			}
		}
	}
	return caps
}

// checkTargetGeometry performs the target-location collision check the
// paper describes for deployments without the Extended Simulator: "only
// the target location is checked for potential collisions". It validates
// the arm's modelled volume at the target against the platform and every
// cuboid registered in this arm's frame. The box of the device that hosts
// an *inside* target location is excluded — reaching into an open device
// is the point of such a move (its door is guarded by general rule 1).
func checkTargetGeometry(ctx *EvalContext) string {
	target, ok := resolveTarget(ctx)
	if !ok {
		return "" // unresolvable targets are caught by structural validation
	}
	armID := ctx.Cmd.Device
	caps := armVolumesAtTarget(ctx, target)
	floor := geom.PlaneFromPointNormal(geom.V(0, 0, ctx.Lab.FloorZ(armID)), geom.V(0, 0, 1))
	for i, c := range caps {
		if geom.CapsulePlanePenetrates(c, floor) {
			part := "gripper"
			if i > 0 {
				part = "held object"
			}
			return fmt.Sprintf("%s would penetrate the platform at target %v", part, target)
		}
		for _, wall := range ctx.Lab.Walls(armID) {
			if geom.CapsulePlanePenetrates(c, wall) {
				part := "gripper"
				if i > 0 {
					part = "held object"
				}
				return fmt.Sprintf("%s would punch into a lab wall at target %v", part, target)
			}
		}
	}

	// Devices whose door the model believes is open may be legitimately
	// reached into, so their cuboids are excluded (their closed-door case
	// is rule 1's concern); so is the owner of an inside target location.
	excluded := map[string]bool{}
	if ctx.Cmd.TargetName != "" && ctx.Lab.LocationIsInside(ctx.Cmd.TargetName) {
		if owner, ok := ctx.Lab.LocationOwner(ctx.Cmd.TargetName); ok {
			excluded[owner] = true
		}
	}
	boxes := ctx.Lab.DeviceBoxes(armID)
	for _, nb := range boxes {
		for _, door := range ctx.Lab.DeviceDoors(nb.Name) {
			if ctx.State.GetBool(state.DoorStatusOf(nb.Name, door)) {
				excluded[nb.Name] = true
				break
			}
		}
	}
	// Time multiplexing: sleeping arms appear as cuboids in this arm's
	// frame (awake arms are handled by the others-asleep precondition).
	if ctx.Cfg.Generation >= GenModified && ctx.Cfg.Multiplex == MultiplexTime {
		for _, other := range ctx.Lab.ArmIDs() {
			if other == armID {
				continue
			}
			if ctx.State.GetBool(state.ArmAsleep(other)) {
				if box, ok := ctx.Lab.SleepBox(armID, other); ok {
					boxes = append(boxes, NamedBox{Name: "sleeping:" + other, Box: box})
				}
			}
		}
	}
	for _, nb := range boxes {
		if excluded[nb.Name] {
			continue
		}
		for i, c := range caps {
			if nb.IntersectsCapsule(c) {
				part := "gripper"
				if i > 0 {
					part = "held object"
				}
				return fmt.Sprintf("%s would collide with %s at target %v", part, nb.Name, target)
			}
		}
	}
	return ""
}

// checkOthersAsleep is the time-multiplexing precondition: while this arm
// moves, every other arm must rest in its sleep pose.
func checkOthersAsleep(ctx *EvalContext) string {
	for _, other := range ctx.Lab.ArmIDs() {
		if other == ctx.Cmd.Device {
			continue
		}
		if !ctx.State.GetBool(state.ArmAsleep(other)) {
			return fmt.Sprintf("time multiplexing requires arm %s to be in its sleep pose", other)
		}
	}
	return ""
}

// checkWithinZone is the space-multiplexing precondition: the move's
// target must stay on the arm's side of its software wall.
func checkWithinZone(ctx *EvalContext) string {
	zone, ok := ctx.Lab.Zone(ctx.Cmd.Device)
	if !ok {
		return ""
	}
	target, ok := resolveTarget(ctx)
	if !ok {
		return ""
	}
	g := ctx.Lab.ArmGeometry(ctx.Cmd.Device)
	if zone.SignedDist(target) < g.FingerRadius {
		return fmt.Sprintf("target %v crosses the software wall of arm %s", target, ctx.Cmd.Device)
	}
	return ""
}

// placedContainer resolves which container a place-style command deposits
// and into which device: explicit fields first, then the model's belief
// about what the arm holds and where it stands.
func placedContainer(ctx *EvalContext) (object, device string) {
	object = ctx.Cmd.Object
	if object == "" {
		object = heldObjectOf(ctx, ctx.Cmd.Device)
	}
	device = ctx.Cmd.InsideDevice
	if device == "" {
		loc := ctx.State.GetString(state.ArmAt(ctx.Cmd.Device))
		if loc != "" {
			if owner, ok := ctx.Lab.LocationOwner(loc); ok && ctx.Lab.LocationIsInside(loc) {
				device = owner
			}
		}
	}
	return object, device
}

// dosedContainer resolves which container a dosing command fills: the
// explicit object, or whatever the model believes sits inside the dosing
// device.
func dosedContainer(ctx *EvalContext) string {
	if ctx.Cmd.Object != "" {
		return ctx.Cmd.Object
	}
	return ctx.State.GetString(state.ContainerInside(ctx.Cmd.Device))
}
