package rules

import (
	"time"

	"repro/internal/action"
	"repro/internal/obs"
	"repro/internal/state"
)

// Per-rule observability (ISSUE 10). The aggregate check-overhead
// series says the checker is slow or firing; it cannot say *which rule*
// is slow, which fires most, or which rules pass by a hair. RuleMetrics
// resolves one instrument set per rule from the labeled families at
// construction, so the observed validation path pays only atomic
// increments plus one chained clock read per rule — no map lookups,
// no allocation — and /metrics/prom grows rule-labeled series:
//
//	rabit_rule_evals_total{rule="general-1"}  evaluations
//	rabit_rule_fires_total{rule="general-1"}  violations fired
//	rabit_rule_eval_seconds{rule="general-1"} evaluation latency
//	rabit_rule_margin_ratio{rule="general-8"} near-miss margin
//
// The margin histogram is the drift detector: rules that can quantify
// headroom (capacity and threshold checks) report how close each
// passing command came to the limit, so a lab trending toward its first
// violation is visible before the alert.

// ruleInstruments is one rule's cached instrument set.
type ruleInstruments struct {
	evals  *obs.Counter
	fires  *obs.Counter
	lat    *obs.Histogram
	margin *obs.Histogram // nil for rules without a Margin
}

// RuleMetrics holds per-rule instruments indexed by rule position.
// Build one per engine with NewRuleMetrics; nil disables per-rule
// instrumentation (ValidateObserved then degrades to Validate).
type RuleMetrics struct {
	perRule []ruleInstruments
}

// NewRuleMetrics resolves one instrument set per rule of the rulebase
// from reg's labeled families. Returns nil (instrumentation off) when
// either argument is nil.
func NewRuleMetrics(reg *obs.Registry, rb *Rulebase) *RuleMetrics {
	if reg == nil || rb == nil {
		return nil
	}
	evals := reg.CounterFamily(obs.FamilyRuleEvals, obs.LabelRule)
	fires := reg.CounterFamily(obs.FamilyRuleFires, obs.LabelRule)
	lat := reg.HistogramFamily(obs.FamilyRuleEval, obs.LabelRule)
	margin := reg.RatioHistogramFamily(obs.FamilyRuleMargin, obs.LabelRule)
	m := &RuleMetrics{perRule: make([]ruleInstruments, len(rb.rules))}
	for i, r := range rb.rules {
		ri := &m.perRule[i]
		ri.evals = evals.Counter(r.ID)
		ri.fires = fires.Counter(r.ID)
		ri.lat = lat.Histogram(r.ID)
		if r.Margin != nil {
			ri.margin = margin.Histogram(r.ID)
		}
	}
	return m
}

// Reset zeroes every rule's instruments — the engine's Start calls it
// so a fresh run (or a pooled engine's next tenant) measures from zero.
// Nil-safe.
func (m *RuleMetrics) Reset() {
	if m == nil {
		return
	}
	for i := range m.perRule {
		ri := &m.perRule[i]
		ri.evals.Reset()
		ri.fires.Reset()
		ri.lat.Reset()
		ri.margin.Reset()
	}
}

// ValidateObserved is Validate with per-rule instrumentation: for every
// rule consulted it counts the evaluation, times it (stage boundaries
// chain clock reads, one per rule), counts a fire when the rule
// violates, and histograms the near-miss margin when the rule passes
// and exposes one. A non-empty traceID is published as the latency
// bucket's exemplar, linking the metric to the causal trace. With a nil
// RuleMetrics it is exactly Validate.
//
// "Evaluated" means consulted: a rule whose AppliesTo rejects the
// command still counts an evaluation (its latency is the cost of
// deciding non-applicability), so fires/evals is a true fire rate over
// everything the rule was shown.
func (rb *Rulebase) ValidateObserved(s state.View, cmd action.Command, m *RuleMetrics, traceID string) []Violation {
	if m == nil {
		return rb.Validate(s, cmd)
	}
	ctx := &EvalContext{State: s, Cmd: cmd, Lab: rb.lab, Cfg: rb.cfg}
	var out []Violation
	prev := time.Now()
	for _, r := range rb.RulesFor(cmd.Action) {
		if !r.matchesDevice(cmd) {
			continue
		}
		v := r.Evaluate(ctx)
		var mg float64
		hasMargin := false
		if v == nil && r.Margin != nil {
			mg, hasMargin = r.Margin(ctx)
		}
		now := time.Now()
		d := now.Sub(prev)
		prev = now
		ri := &m.perRule[r.index]
		ri.evals.Inc()
		if traceID != "" {
			ri.lat.ObserveExemplar(d, traceID)
		} else {
			ri.lat.Observe(d)
		}
		if v != nil {
			ri.fires.Inc()
			out = append(out, *v)
			continue
		}
		if hasMargin && ri.margin != nil {
			if mg < 0 {
				mg = 0
			}
			if mg > 1 {
				mg = 1
			}
			// Margins ride the nanosecond histogram as ratio×1e9; the
			// exposition's ns→value conversion recovers the raw ratio, so
			// le="0.001" holds margins of ≤0.1%.
			ri.margin.Observe(time.Duration(mg * 1e9))
		}
	}
	return out
}
