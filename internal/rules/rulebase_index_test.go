package rules

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/action"
)

// TestIndexedValidateMatchesFullScan is the index-correctness property
// test: for random states and commands, the per-label bucket evaluation
// must yield exactly the violations (same rules, same order, same
// reasons) as evaluating every rule in table order.
func TestIndexedValidateMatchesFullScan(t *testing.T) {
	rb := newRB(Config{Generation: GenModified, Multiplex: MultiplexTime})
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 600; i++ {
		s := randomState(rng)
		cmd := NormalizeCommand(rb.Lab(), randomCommand(rng))
		got := rb.Validate(s, cmd)
		ctx := &EvalContext{State: s, Cmd: cmd, Lab: rb.Lab(), Cfg: rb.Config()}
		var want []Violation
		for _, r := range rb.Rules() {
			if v := r.Evaluate(ctx); v != nil {
				want = append(want, *v)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("indexed verdict diverges for %v:\nindexed: %v\nfull:    %v", cmd, got, want)
		}
	}
}

// TestRulesForCoversEveryRule: a rule is reachable through the index for
// every label it declares, and catch-alls for every label at all.
func TestRulesForCoversEveryRule(t *testing.T) {
	rb := newRB(Config{Generation: GenModified, Multiplex: MultiplexTime})
	for _, r := range rb.Rules() {
		labels := r.Labels
		if labels == nil {
			labels = []action.Label{action.ReadStatus, action.MoveRobot}
		}
		for _, l := range labels {
			found := false
			for _, br := range rb.RulesFor(l) {
				if br == r {
					found = true
				}
			}
			if !found {
				t.Errorf("rule %s not reachable via label %s", r.ID, l)
			}
		}
	}
}

// TestDuplicateRuleIDRejected: NewRulebase must refuse colliding IDs
// instead of silently shadowing one rule with another.
func TestDuplicateRuleIDRejected(t *testing.T) {
	dup := &Rule{
		ID: "general-1", Scope: ScopeCustom, Number: 99,
		Description: "collides with general rule 1",
		Check:       func(*EvalContext) string { return "" },
	}
	if _, err := NewRulebase(newFakeLab(), Config{Generation: GenInitial}, dup); err == nil {
		t.Fatal("duplicate rule ID accepted")
	}
	missing := &Rule{
		Scope: ScopeCustom, Number: 100,
		Description: "no ID at all",
		Check:       func(*EvalContext) string { return "" },
	}
	if _, err := NewRulebase(newFakeLab(), Config{Generation: GenInitial}, missing); err == nil {
		t.Fatal("rule without ID accepted")
	}
}

// TestRuleByID resolves every constructed rule and misses unknown IDs.
func TestRuleByID(t *testing.T) {
	rb := newRB(Config{Generation: GenModified, Multiplex: MultiplexSpace})
	for _, r := range rb.Rules() {
		got, ok := rb.RuleByID(r.ID)
		if !ok || got != r {
			t.Errorf("RuleByID(%q) = %v, %v", r.ID, got, ok)
		}
	}
	if _, ok := rb.RuleByID("no-such-rule"); ok {
		t.Error("RuleByID invented a rule")
	}
}

// TestLabelReadsGlobalRouting pins the routing table the engine relies
// on: door-closing and motion labels read globally (rule 2 scans every
// arm), while the pure device-action labels are command-scoped.
func TestLabelReadsGlobalRouting(t *testing.T) {
	rb := newRB(Config{Generation: GenModified, Multiplex: MultiplexTime})
	wantGlobal := map[action.Label]bool{
		action.CloseDoor:      true, // rule 2 reads all arms' robotArmInside
		action.MoveRobot:      true, // rule 1/3 geometry
		action.SetActionValue: false,
		action.StartAction:    false,
		action.StopAction:     false, // no rules at all
		action.ReadStatus:     false,
		action.OpenDoor:       false, // rule 10 reads only the device
	}
	for l, want := range wantGlobal {
		if got := rb.LabelReadsGlobal(l); got != want {
			t.Errorf("LabelReadsGlobal(%s) = %v, want %v", l, got, want)
		}
	}
}
