package rules

import (
	"strings"
	"testing"

	"repro/internal/action"
	"repro/internal/geom"
	"repro/internal/state"
)

// fakeLab is a configurable LabModel for unit tests, loosely shaped like
// the paper's testbed: two arms, a dosing device with a door, a hotplate
// with a threshold, a centrifuge, a grid, and one vial.
type fakeLab struct {
	types      map[string]DeviceType
	doors      map[string]bool
	arms       []string
	locOwner   map[string]string
	locInside  map[string]bool
	locPos     map[string]geom.Vec3 // same for all arms in this fake
	boxes      map[string][]NamedBox
	sleepBoxes map[string]geom.AABB
	thresholds map[string]float64
	objects    map[string]ObjectGeom
	zones      map[string]geom.Plane
}

var _ LabModel = (*fakeLab)(nil)

func newFakeLab() *fakeLab {
	return &fakeLab{
		types: map[string]DeviceType{
			"viperx":        TypeRobotArm,
			"ned2":          TypeRobotArm,
			"dosing_device": TypeDosingSystem,
			"hotplate":      TypeActionDevice,
			"centrifuge":    TypeActionDevice,
			"pump":          TypeDosingSystem,
		},
		doors: map[string]bool{"dosing_device": true, "centrifuge": true},
		arms:  []string{"viperx", "ned2"},
		locOwner: map[string]string{
			"grid_NW":   "grid",
			"dd_pickup": "dosing_device",
			"hp_place":  "hotplate",
			"cf_slot":   "centrifuge",
		},
		locInside: map[string]bool{"dd_pickup": true, "cf_slot": true},
		locPos: map[string]geom.Vec3{
			"grid_NW":   geom.V(0.32, 0.22, 0.16),
			"dd_pickup": geom.V(0.15, 0.45, 0.10),
			"hp_place":  geom.V(0.55, 0.45, 0.20),
			"cf_slot":   geom.V(0.75, 0.40, 0.12),
		},
		boxes: map[string][]NamedBox{
			"viperx": {
				{Name: "grid", Box: geom.Box(geom.V(0.29, 0.19, 0), geom.V(0.41, 0.31, 0.08))},
				{Name: "dosing_device", Box: geom.Box(geom.V(0.05, 0.35, 0), geom.V(0.25, 0.55, 0.30))},
				{Name: "hotplate", Box: geom.Box(geom.V(0.48, 0.38, 0), geom.V(0.62, 0.52, 0.12))},
			},
			"ned2": {},
		},
		sleepBoxes: map[string]geom.AABB{
			"viperx": geom.Box(geom.V(-0.15, -0.15, 0), geom.V(0.15, 0.15, 0.3)),
			"ned2":   geom.Box(geom.V(0.65, -0.15, 0), geom.V(0.95, 0.15, 0.3)),
		},
		thresholds: map[string]float64{"hotplate": 150},
		objects: map[string]ObjectGeom{
			"vial_1": {CarriedHang: 0.075, Radius: 0.012, CapacityMg: 10, CapacityML: 12},
			"beaker": {CarriedHang: 0.1, Radius: 0.03, CapacityML: 100},
		},
		zones: map[string]geom.Plane{
			// ViperX owns x < 0.45, Ned2 owns x > 0.45.
			"viperx": {N: geom.V(-1, 0, 0), D: -0.45},
			"ned2":   {N: geom.V(1, 0, 0), D: 0.45},
		},
	}
}

func (f *fakeLab) DeviceType(id string) (DeviceType, bool) { t, ok := f.types[id]; return t, ok }
func (f *fakeLab) DeviceHasDoor(id string) bool            { return f.doors[id] }
func (f *fakeLab) DeviceDoors(id string) []string {
	if f.doors[id] {
		return []string{""}
	}
	return nil
}
func (f *fakeLab) LocationDoor(loc string) string        { return "" }
func (f *fakeLab) ArmIDs() []string                      { return f.arms }
func (f *fakeLab) LocationOwner(l string) (string, bool) { o, ok := f.locOwner[l]; return o, ok }
func (f *fakeLab) LocationIsInside(l string) bool        { return f.locInside[l] }
func (f *fakeLab) LocationPos(arm, l string) (geom.Vec3, bool) {
	p, ok := f.locPos[l]
	return p, ok
}
func (f *fakeLab) MatchLocation(arm string, p geom.Vec3) (string, bool) {
	for name, lp := range f.locPos {
		if lp.Dist(p) <= 0.005 {
			return name, true
		}
	}
	return "", false
}
func (f *fakeLab) DeviceBoxes(arm string) []NamedBox { return f.boxes[arm] }
func (f *fakeLab) SleepBox(arm, other string) (geom.AABB, bool) {
	b, ok := f.sleepBoxes[other]
	return b, ok
}
func (f *fakeLab) ArmGeometry(arm string) ArmGeom {
	return ArmGeom{FingerReach: 0.062, FingerRadius: 0.012}
}
func (f *fakeLab) HostsContainers(id string) bool {
	for _, owner := range f.locOwner {
		if owner == id {
			return true
		}
	}
	return false
}
func (f *fakeLab) ObjectGeometry(id string) (ObjectGeom, bool) { g, ok := f.objects[id]; return g, ok }
func (f *fakeLab) ActionThreshold(id string) (float64, bool)   { t, ok := f.thresholds[id]; return t, ok }
func (f *fakeLab) FloorZ(arm string) float64                   { return 0 }
func (f *fakeLab) Walls(arm string) []geom.Plane               { return nil }
func (f *fakeLab) Zone(arm string) (geom.Plane, bool)          { z, ok := f.zones[arm]; return z, ok }

func initialModel() state.Snapshot {
	s := state.Snapshot{}
	s.Set(state.DoorStatus("dosing_device"), state.Bool(false))
	s.Set(state.DoorStatus("centrifuge"), state.Bool(false))
	s.Set(state.Running("dosing_device"), state.Bool(false))
	s.Set(state.Running("hotplate"), state.Bool(false))
	s.Set(state.Holding("viperx"), state.Bool(false))
	s.Set(state.Holding("ned2"), state.Bool(false))
	s.Set(state.ArmAsleep("viperx"), state.Bool(false))
	s.Set(state.ArmAsleep("ned2"), state.Bool(false))
	s.Set(state.ObjectAt("grid_NW"), state.Str("vial_1"))
	s.Set(state.RedDotNorth("centrifuge"), state.Bool(true))
	return s
}

func newRB(cfg Config) *Rulebase {
	return MustNewRulebase(newFakeLab(), cfg, HeinCustomRules("centrifuge")...)
}

func violates(t *testing.T, rb *Rulebase, s state.Snapshot, cmd action.Command, wantRule string) {
	t.Helper()
	vs := rb.Validate(s, cmd)
	for _, v := range vs {
		if v.Rule.ID == wantRule {
			return
		}
	}
	t.Errorf("command %v: want violation of %s, got %v", cmd, wantRule, vs)
}

func passes(t *testing.T, rb *Rulebase, s state.Snapshot, cmd action.Command) {
	t.Helper()
	if vs := rb.Validate(s, cmd); len(vs) != 0 {
		t.Errorf("command %v: unexpected violations: %v", cmd, vs)
	}
}

func TestGeneralRule1ClosedDoor(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	cmd := action.Command{Device: "viperx", Action: action.MoveRobotInside,
		InsideDevice: "dosing_device", TargetName: "dd_pickup"}
	violates(t, rb, s, cmd, "general-1")

	s.Set(state.DoorStatus("dosing_device"), state.Bool(true))
	passes(t, rb, s, cmd)
}

func TestGeneralRule1AlsoGuardsPlainMovesToInsideLocations(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	cmd := action.Command{Device: "viperx", Action: action.MoveRobot, TargetName: "dd_pickup"}
	violates(t, rb, s, cmd, "general-1")
}

func TestGeneralRule2CloseDoorOnArm(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	s.Set(state.DoorStatus("dosing_device"), state.Bool(true))
	s.Set(state.ArmInside("viperx", "dosing_device"), state.Bool(true))
	cmd := action.Command{Device: "dosing_device", Action: action.CloseDoor}
	violates(t, rb, s, cmd, "general-2")

	s.Set(state.ArmInside("viperx", "dosing_device"), state.Bool(false))
	passes(t, rb, s, cmd)
}

func TestGeneralRule3OccupiedLocation(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	// Moving to the vial's slot without declaring a pick is a violation.
	cmd := action.Command{Device: "viperx", Action: action.MoveRobot, TargetName: "grid_NW"}
	violates(t, rb, s, cmd, "general-3")
	// Declaring the pick target waives the occupancy check.
	pick := cmd
	pick.Object = "vial_1"
	passes(t, rb, s, pick)
}

func TestGeneralRule3PlatformGeometry(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	// Bug 9: target so low the gripper fingers would penetrate the deck.
	cmd := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.45, 0.10, 0.03)}
	violates(t, rb, s, cmd, "general-3")
	// The paper's Fig. 6 z=0.10 is fine for the bare gripper.
	passes(t, rb, s, action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.45, 0.10, 0.10)})
}

func TestGeneralRule3DeviceCuboidGeometry(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	// Raw-coordinate move straight into the grid cuboid (the paper's
	// controlled experiment: "move UR3e inside the grid").
	cmd := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.35, 0.25, 0.05)}
	violates(t, rb, s, cmd, "general-3")
}

func TestGeneralRule3InsideLocationExcludesOwnerBox(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	s.Set(state.DoorStatus("dosing_device"), state.Bool(true))
	// dd_pickup lies within the dosing device body; reaching it must not
	// trip the geometric check.
	cmd := action.Command{Device: "viperx", Action: action.MoveRobotInside,
		InsideDevice: "dosing_device", TargetName: "dd_pickup"}
	passes(t, rb, s, cmd)
}

func TestGeneralRule3HeldObjectOnlyInModifiedGeneration(t *testing.T) {
	s := initialModel()
	s.Set(state.Holding("viperx"), state.Bool(true))
	s.Set(state.HeldObject("viperx"), state.Str("vial_1"))
	// Bug 13 geometry: z=0.07 clears the bare gripper (reach 0.062) but
	// not the hanging vial (hang 0.075).
	cmd := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.45, 0.10, 0.07)}

	initial := newRB(Config{Generation: GenInitial})
	passes(t, initial, s, cmd)

	modified := newRB(Config{Generation: GenModified, Multiplex: MultiplexNone})
	violates(t, modified, s, cmd, "general-3")
}

func TestGeneralRule3HeldObjectVsDeviceCuboid(t *testing.T) {
	// Bug 11 geometry: approach over the hotplate at z=0.19 clears the
	// gripper but the held vial dips into the cuboid.
	s := initialModel()
	s.Set(state.Holding("viperx"), state.Bool(true))
	s.Set(state.HeldObject("viperx"), state.Str("vial_1"))
	cmd := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.55, 0.45, 0.19)}

	initial := newRB(Config{Generation: GenInitial})
	passes(t, initial, s, cmd)

	modified := newRB(Config{Generation: GenModified, Multiplex: MultiplexNone})
	violates(t, modified, s, cmd, "general-3")
}

func TestGeneralRule4PickWhileHolding(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	s.Set(state.Holding("viperx"), state.Bool(true))
	s.Set(state.HeldObject("viperx"), state.Str("vial_1"))
	violates(t, rb, s,
		action.Command{Device: "viperx", Action: action.CloseGripper}, "general-4")
	violates(t, rb, s,
		action.Command{Device: "viperx", Action: action.PickObject, Object: "beaker"}, "general-4")

	s.Set(state.Holding("viperx"), state.Bool(false))
	passes(t, rb, s, action.Command{Device: "viperx", Action: action.CloseGripper})
}

func TestGeneralRule5NoContainer(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	cmd := action.Command{Device: "hotplate", Action: action.StartAction}
	violates(t, rb, s, cmd, "general-5")

	s.Set(state.ContainerInside("hotplate"), state.Str("vial_1"))
	s.Set(state.HasSolid("vial_1"), state.Bool(true))
	passes(t, rb, s, cmd)
}

func TestGeneralRule6EmptyContainer(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	s.Set(state.ContainerInside("hotplate"), state.Str("vial_1"))
	cmd := action.Command{Device: "hotplate", Action: action.StartAction}
	violates(t, rb, s, cmd, "general-6")

	s.Set(state.HasLiquid("vial_1"), state.Bool(true))
	passes(t, rb, s, cmd)
}

func TestGeneralRule7Stoppers(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	s.Set(state.HasLiquid("beaker"), state.Bool(true))
	s.Set(state.HasSolid("vial_1"), state.Bool(true))
	cmd := action.Command{Device: "pump", Action: action.TransferSubstance,
		FromContainer: "beaker", ToContainer: "vial_1", Value: 2}
	passes(t, rb, s, cmd)

	s.Set(state.Stopper("vial_1"), state.Bool(true))
	violates(t, rb, s, cmd, "general-7")

	s.Set(state.Stopper("vial_1"), state.Bool(false))
	s.Set(state.Stopper("beaker"), state.Bool(true))
	violates(t, rb, s, cmd, "general-7")
}

func TestGeneralRule8TransferNeedsFilledSource(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	s.Set(state.HasSolid("vial_1"), state.Bool(true))
	cmd := action.Command{Device: "pump", Action: action.TransferSubstance,
		FromContainer: "beaker", ToContainer: "vial_1", Value: 2}
	violates(t, rb, s, cmd, "general-8")
}

func TestGeneralRule8DoseOverflow(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	s.Set(state.ContainerInside("dosing_device"), state.Str("vial_1"))
	s.Set(state.DoorStatus("dosing_device"), state.Bool(false))
	// The pilot-study scenario: dose more solid than the vial can hold.
	cmd := action.Command{Device: "dosing_device", Action: action.DoseSolid, Value: 25}
	violates(t, rb, s, cmd, "general-8")
	passes(t, rb, s, action.Command{Device: "dosing_device", Action: action.DoseSolid, Value: 5})

	// Accumulation counts: 8 then 8 overflows on the second dose.
	s.Set(state.SolidAmount("vial_1"), state.Float(8))
	violates(t, rb, s, action.Command{Device: "dosing_device", Action: action.DoseSolid, Value: 8}, "general-8")
}

func TestGeneralRule9DoorOpenWhileStarting(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	s.Set(state.DoorStatus("dosing_device"), state.Bool(true))
	s.Set(state.ContainerInside("dosing_device"), state.Str("vial_1"))
	cmd := action.Command{Device: "dosing_device", Action: action.DoseSolid, Value: 5}
	violates(t, rb, s, cmd, "general-9")

	s.Set(state.DoorStatus("dosing_device"), state.Bool(false))
	passes(t, rb, s, cmd)
}

func TestGeneralRule10OpenDoorWhileRunning(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	s.Set(state.Running("dosing_device"), state.Bool(true))
	cmd := action.Command{Device: "dosing_device", Action: action.OpenDoor}
	violates(t, rb, s, cmd, "general-10")

	s.Set(state.Running("dosing_device"), state.Bool(false))
	passes(t, rb, s, cmd)
}

func TestGeneralRule11Threshold(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	violates(t, rb, s,
		action.Command{Device: "hotplate", Action: action.SetActionValue, Value: 200}, "general-11")
	passes(t, rb, s,
		action.Command{Device: "hotplate", Action: action.SetActionValue, Value: 120})

	// Starting with an over-threshold setpoint also violates.
	s.Set(state.ActionValue("hotplate"), state.Float(200))
	s.Set(state.ContainerInside("hotplate"), state.Str("vial_1"))
	s.Set(state.HasSolid("vial_1"), state.Bool(true))
	violates(t, rb, s,
		action.Command{Device: "hotplate", Action: action.StartAction}, "general-11")
}

func TestTableIIPlaceNeedsHoldingOnlyForSemanticPlace(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	// Production-level semantic place with empty hands: invalid command.
	violates(t, rb, s,
		action.Command{Device: "viperx", Action: action.PlaceObject, Object: "vial_1"}, "table2-place")
	// Testbed-level open_gripper with empty hands: allowed — the exact
	// reason Bug C is undetectable on the testbed.
	passes(t, rb, s, action.Command{Device: "viperx", Action: action.OpenGripper})
}

func TestHeinCustomRule1LiquidBeforeSolid(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	cmd := action.Command{Device: "pump", Action: action.DoseLiquid, Object: "vial_1", Value: 2}
	violates(t, rb, s, cmd, "hein-1")

	s.Set(state.HasSolid("vial_1"), state.Bool(true))
	passes(t, rb, s, cmd)
}

func TestHeinCustomRules234CentrifugePlacement(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	s.Set(state.Holding("viperx"), state.Bool(true))
	s.Set(state.HeldObject("viperx"), state.Str("vial_1"))
	s.Set(state.ArmAt("viperx"), state.Str("cf_slot"))
	cmd := action.Command{Device: "viperx", Action: action.OpenGripper}

	// Empty, uncapped, red dot north: violates rules 2 and 4.
	violates(t, rb, s, cmd, "hein-2")
	violates(t, rb, s, cmd, "hein-4")

	s.Set(state.HasSolid("vial_1"), state.Bool(true))
	s.Set(state.HasLiquid("vial_1"), state.Bool(true))
	s.Set(state.Stopper("vial_1"), state.Bool(true))
	passes(t, rb, s, cmd)

	// Red dot misaligned: rule 3.
	s.Set(state.RedDotNorth("centrifuge"), state.Bool(false))
	violates(t, rb, s, cmd, "hein-3")
}

func TestHeinCustomRulesDoNotFireElsewhere(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	s.Set(state.Holding("viperx"), state.Bool(true))
	s.Set(state.HeldObject("viperx"), state.Str("vial_1"))
	s.Set(state.ArmAt("viperx"), state.Str("grid_NW"))
	s.Set(state.ObjectAt("grid_NW"), state.Str("")) // slot free
	// Placing an empty uncapped vial on the grid is fine.
	passes(t, rb, s, action.Command{Device: "viperx", Action: action.OpenGripper})
}

func TestTimeMultiplexing(t *testing.T) {
	rb := newRB(Config{Generation: GenModified, Multiplex: MultiplexTime})
	s := initialModel()
	// Ned2 awake: ViperX may not move.
	cmd := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.45, 0.10, 0.25)}
	violates(t, rb, s, cmd, "mux-time")

	s.Set(state.ArmAsleep("ned2"), state.Bool(true))
	passes(t, rb, s, cmd)

	// Going to sleep is always allowed (that is how the deck quiesces).
	s.Set(state.ArmAsleep("ned2"), state.Bool(false))
	passes(t, rb, s, action.Command{Device: "viperx", Action: action.MoveSleep})
}

func TestTimeMultiplexingSleepingArmIsACuboid(t *testing.T) {
	rb := newRB(Config{Generation: GenModified, Multiplex: MultiplexTime})
	s := initialModel()
	s.Set(state.ArmAsleep("ned2"), state.Bool(true))
	// A target inside Ned2's sleep cuboid is a collision target.
	cmd := action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.8, 0, 0.2)}
	violates(t, rb, s, cmd, "general-3")
}

func TestSpaceMultiplexing(t *testing.T) {
	rb := newRB(Config{Generation: GenModified, Multiplex: MultiplexSpace})
	s := initialModel()
	// ViperX stays in its zone (x < 0.45).
	passes(t, rb, s,
		action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.30, 0.10, 0.25)})
	// Crossing the software wall violates.
	violates(t, rb, s,
		action.Command{Device: "viperx", Action: action.MoveRobot, Target: geom.V(0.60, 0.10, 0.25)}, "mux-space")
	violates(t, rb, s,
		action.Command{Device: "ned2", Action: action.MoveRobot, Target: geom.V(0.30, 0.10, 0.25)}, "mux-space")
}

func TestInitialGenerationHasNoMultiplexRules(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial, Multiplex: MultiplexTime})
	for _, r := range rb.Rules() {
		if r.Scope == ScopeEngine {
			t.Errorf("initial generation must not contain engine rule %s", r.ID)
		}
	}
}

func TestApplyEffects(t *testing.T) {
	lab := newFakeLab()
	s := initialModel()

	s2 := Apply(s, action.Command{Device: "dosing_device", Action: action.OpenDoor}, lab)
	if !s2.GetBool(state.DoorStatus("dosing_device")) {
		t.Error("open_door effect missing")
	}
	if s.GetBool(state.DoorStatus("dosing_device")) {
		t.Error("Apply mutated its input")
	}

	s3 := Apply(s2, action.Command{Device: "viperx", Action: action.MoveRobot, TargetName: "grid_NW"}, lab)
	if got := s3.GetString(state.ArmAt("viperx")); got != "grid_NW" {
		t.Errorf("arm location = %q", got)
	}

	// Pick at the grid: the model transfers the vial to the gripper.
	s4 := Apply(s3, action.Command{Device: "viperx", Action: action.CloseGripper}, lab)
	if !s4.GetBool(state.Holding("viperx")) {
		t.Error("pick effect missing")
	}
	if got := s4.GetString(state.HeldObject("viperx")); got != "vial_1" {
		t.Errorf("held object = %q", got)
	}
	if got := s4.GetString(state.ObjectAt("grid_NW")); got != "" {
		t.Errorf("grid slot still shows %q", got)
	}

	// Move inside the dosing device and place.
	s5 := Apply(s4, action.Command{Device: "viperx", Action: action.MoveRobotInside,
		InsideDevice: "dosing_device", TargetName: "dd_pickup"}, lab)
	if !s5.GetBool(state.ArmInside("viperx", "dosing_device")) {
		t.Error("move_robot_inside effect missing")
	}
	s6 := Apply(s5, action.Command{Device: "viperx", Action: action.OpenGripper}, lab)
	if s6.GetBool(state.Holding("viperx")) {
		t.Error("place should clear holding")
	}
	if got := s6.GetString(state.ContainerInside("dosing_device")); got != "vial_1" {
		t.Errorf("containerInside = %q", got)
	}
	if got := s6.GetString(state.ObjectAt("dd_pickup")); got != "vial_1" {
		t.Errorf("objectAt dd_pickup = %q", got)
	}

	// Moving away clears the inside flag.
	s7 := Apply(s6, action.Command{Device: "viperx", Action: action.MoveHome}, lab)
	if s7.GetBool(state.ArmInside("viperx", "dosing_device")) {
		t.Error("move_home should clear robotArmInside")
	}

	// Dose solid: contents tracked.
	s8 := Apply(s7, action.Command{Device: "dosing_device", Action: action.DoseSolid, Value: 5}, lab)
	if !s8.GetBool(state.HasSolid("vial_1")) {
		t.Error("dose_solid effect missing")
	}
	if v, _ := s8.Get(state.SolidAmount("vial_1")); v.AsFloat() != 5 {
		t.Errorf("solid amount = %v", v)
	}

	// Sleep sets the flag.
	s9 := Apply(s8, action.Command{Device: "viperx", Action: action.MoveSleep}, lab)
	if !s9.GetBool(state.ArmAsleep("viperx")) {
		t.Error("move_sleep effect missing")
	}
}

func TestApplyGripperOnAirAndEmptyOpen(t *testing.T) {
	lab := newFakeLab()
	s := initialModel()
	s.Set(state.ArmAt("viperx"), state.Str("hp_place")) // nothing there

	s2 := Apply(s, action.Command{Device: "viperx", Action: action.CloseGripper}, lab)
	if s2.GetBool(state.Holding("viperx")) {
		t.Error("closing on air should not set holding")
	}
	s3 := Apply(s2, action.Command{Device: "viperx", Action: action.OpenGripper}, lab)
	if s3.GetBool(state.Holding("viperx")) {
		t.Error("opening an empty gripper should be a no-op")
	}
}

func TestApplyTransfer(t *testing.T) {
	lab := newFakeLab()
	s := initialModel()
	s.Set(state.HasLiquid("beaker"), state.Bool(true))
	s.Set(state.LiquidAmount("beaker"), state.Float(10))
	s2 := Apply(s, action.Command{Device: "pump", Action: action.TransferSubstance,
		FromContainer: "beaker", ToContainer: "vial_1", Value: 4}, lab)
	if !s2.GetBool(state.HasLiquid("vial_1")) {
		t.Error("transfer should fill receiver")
	}
	if v, _ := s2.Get(state.LiquidAmount("beaker")); v.AsFloat() != 6 {
		t.Errorf("source amount = %v, want 6", v)
	}
	// Draining the source clears its hasLiquid.
	s3 := Apply(s2, action.Command{Device: "pump", Action: action.TransferSubstance,
		FromContainer: "beaker", ToContainer: "vial_1", Value: 6}, lab)
	if s3.GetBool(state.HasLiquid("beaker")) {
		t.Error("drained source should not report liquid")
	}
}

func TestRulebaseOrderingAndLookup(t *testing.T) {
	rb := newRB(Config{Generation: GenModified, Multiplex: MultiplexTime})
	rules := rb.Rules()
	if len(rules) == 0 {
		t.Fatal("empty rulebase")
	}
	lastScope, lastNum := Scope(0), -1
	for _, r := range rules {
		if r.Scope < lastScope || (r.Scope == lastScope && r.Number < lastNum) {
			t.Fatalf("rules out of order at %s", r.ID)
		}
		lastScope, lastNum = r.Scope, r.Number
	}
	if _, ok := rb.RuleByID("general-3"); !ok {
		t.Error("RuleByID failed")
	}
	if _, ok := rb.RuleByID("nope"); ok {
		t.Error("RuleByID found a ghost")
	}
}

func TestGeneralRulesCoverTableIII(t *testing.T) {
	nums := map[int]bool{}
	for _, r := range GeneralRules() {
		if r.Scope == ScopeGeneral && r.Number >= 1 {
			nums[r.Number] = true
		}
	}
	for i := 1; i <= 11; i++ {
		if !nums[i] {
			t.Errorf("general rule %d missing", i)
		}
	}
}

func TestCustomRulesCoverTableIV(t *testing.T) {
	rs := HeinCustomRules("centrifuge")
	if len(rs) != 4 {
		t.Fatalf("want 4 custom rules, got %d", len(rs))
	}
	for i, r := range rs {
		if r.Number != i+1 || r.Scope != ScopeCustom {
			t.Errorf("custom rule %d mis-numbered: %s", i+1, r.ID)
		}
	}
}

func TestTransitionTableMatchesPaperTableII(t *testing.T) {
	table := TransitionTable()
	byLabel := map[action.Label]TransitionEntry{}
	for _, e := range table {
		byLabel[e.ActionLabel] = e
	}
	// The three rows shown in the paper's Table II.
	moveIn, ok := byLabel[action.MoveRobotInside]
	if !ok {
		t.Fatal("move_robot_inside row missing")
	}
	if moveIn.Preconditions[0] != "deviceDoorStatus[device] = 1" {
		t.Errorf("move_robot_inside precondition = %q", moveIn.Preconditions[0])
	}
	if moveIn.Postconditions[0] != "robotArmInside[robot][device] = 1" {
		t.Errorf("move_robot_inside postcondition = %q", moveIn.Postconditions[0])
	}
	pick := byLabel[action.PickObject]
	if pick.Preconditions[0] != "robotArmHolding[robot] = 0" ||
		pick.Postconditions[0] != "robotArmHolding[robot] = 1" {
		t.Errorf("pick_object row wrong: %+v", pick)
	}
	place := byLabel[action.PlaceObject]
	if place.Preconditions[0] != "robotArmHolding[robot] = 1" ||
		place.Postconditions[0] != "robotArmHolding[robot] = 0" {
		t.Errorf("place_object row wrong: %+v", place)
	}
}

func TestDeclarativeRule(t *testing.T) {
	r := NewDeclarativeRule("custom-x", "spin coater needs a film loaded", 5,
		[]action.Label{action.StartAction}, []string{"spin_coater"},
		[]VarRequirement{{Var: "filmLoaded", Arg: "$device", Equals: state.Bool(true)}})
	lab := newFakeLab()
	s := initialModel()
	ctx := &EvalContext{State: s, Cmd: action.Command{Device: "spin_coater", Action: action.StartAction}, Lab: lab}
	v := r.Evaluate(ctx)
	if v == nil {
		t.Fatal("expected violation when filmLoaded is unset")
	}
	if !strings.Contains(v.Reason, "filmLoaded[spin_coater]") {
		t.Errorf("reason %q should name the variable", v.Reason)
	}
	s.Set(state.MakeKey("filmLoaded", "spin_coater"), state.Bool(true))
	if v := r.Evaluate(ctx); v != nil {
		t.Errorf("unexpected violation: %v", v)
	}
}

func TestViolationErrorMessage(t *testing.T) {
	rb := newRB(Config{Generation: GenInitial})
	s := initialModel()
	vs := rb.Validate(s, action.Command{Device: "viperx", Action: action.MoveRobotInside,
		InsideDevice: "dosing_device", TargetName: "dd_pickup"})
	if len(vs) == 0 {
		t.Fatal("expected violations")
	}
	msg := vs[0].Error()
	for _, want := range []string{"general-1", "door", "dosing_device"} {
		if !strings.Contains(msg, want) {
			t.Errorf("violation message %q missing %q", msg, want)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if TypeContainer.String() != "Container" || TypeRobotArm.String() != "Robot Arm" ||
		TypeDosingSystem.String() != "Dosing System" || TypeActionDevice.String() != "Action Device" {
		t.Error("device type names wrong")
	}
	if GenInitial.String() != "initial" || GenModified.String() != "modified" {
		t.Error("generation names wrong")
	}
	if MultiplexTime.String() != "time" || MultiplexSpace.String() != "space" || MultiplexNone.String() != "none" {
		t.Error("multiplex names wrong")
	}
	if ScopeGeneral.String() != "general" || ScopeCustom.String() != "custom" || ScopeEngine.String() != "engine" {
		t.Error("scope names wrong")
	}
}
