package rules

import (
	"repro/internal/action"
	"repro/internal/state"
)

// Apply computes S_expected = UpdateState(S_current, a_next) — Fig. 2,
// line 11: the model state after the command's postconditions, assuming
// every device behaves. The engine later compares this against the
// observed state to detect device malfunctions.
//
// The model dead-reckons facts no sensor reports (gripper contents,
// container contents); those variables simply never appear in observed
// snapshots, so they cannot raise malfunction alerts — but they do drive
// precondition checks.
func Apply(model state.Snapshot, cmd action.Command, lab LabModel) state.Snapshot {
	s := model.Clone()
	applyCommand(s, cmd, lab)
	return s
}

// ApplyOverlay computes the same expectation as Apply but as a
// copy-on-write layer over base: the command's postconditions land in the
// overlay, the base is never copied. This is the engine's hot-path form —
// S_expected no longer allocates proportionally to deck size.
func ApplyOverlay(base state.View, cmd action.Command, lab LabModel) *state.Overlay {
	o := state.NewOverlay(base)
	applyCommand(o, cmd, lab)
	return o
}

// applyCommand writes one command's postconditions into any store.
func applyCommand(s state.Store, cmd action.Command, lab LabModel) {
	arm := cmd.Device
	switch cmd.Action {
	case action.OpenDoor:
		s.Set(state.DoorStatusOf(cmd.Device, cmd.Door), state.Bool(true))

	case action.CloseDoor:
		s.Set(state.DoorStatusOf(cmd.Device, cmd.Door), state.Bool(false))

	case action.MoveRobot:
		clearInside(s, lab, arm)
		if cmd.TargetName != "" {
			s.Set(state.ArmAt(arm), state.Str(cmd.TargetName))
		} else {
			// A raw-coordinate move leaves the arm at a position the
			// model cannot name; drop the variable so the malfunction
			// comparison holds no opinion. This is the observability gap
			// that lets the ViperX's silent command skip go unnoticed
			// (Section IV, category 4).
			s.Delete(state.ArmAt(arm))
		}
		s.Set(state.ArmAsleep(arm), state.Bool(false))
		if cmd.TargetName != "" && lab != nil && lab.LocationIsInside(cmd.TargetName) {
			if owner, ok := lab.LocationOwner(cmd.TargetName); ok {
				s.Set(state.ArmInside(arm, owner), state.Bool(true))
			}
		}

	case action.MoveRobotInside:
		clearInside(s, lab, arm)
		s.Set(state.ArmAt(arm), state.Str(cmd.TargetName))
		s.Set(state.ArmAsleep(arm), state.Bool(false))
		if cmd.InsideDevice != "" {
			s.Set(state.ArmInside(arm, cmd.InsideDevice), state.Bool(true))
		}

	case action.MoveHome:
		clearInside(s, lab, arm)
		// The home pose is not a named deck location; the model holds no
		// opinion about the reported location tag.
		s.Delete(state.ArmAt(arm))
		s.Set(state.ArmAsleep(arm), state.Bool(false))

	case action.MoveSleep:
		clearInside(s, lab, arm)
		s.Delete(state.ArmAt(arm))
		s.Set(state.ArmAsleep(arm), state.Bool(true))

	case action.PickObject, action.CloseGripper:
		applyPick(s, cmd, lab)

	case action.PlaceObject, action.OpenGripper:
		applyPlace(s, cmd, lab)

	case action.StartAction:
		s.Set(state.Running(cmd.Device), state.Bool(true))

	case action.StopAction:
		s.Set(state.Running(cmd.Device), state.Bool(false))

	case action.SetActionValue:
		s.Set(state.ActionValue(cmd.Device), state.Float(cmd.Value))

	case action.DoseSolid:
		c := cmd.Object
		if c == "" {
			c = s.GetString(state.ContainerInside(cmd.Device))
		}
		if c != "" {
			s.Set(state.HasSolid(c), state.Bool(true))
			addAmount(s, state.SolidAmount(c), cmd.Value)
		}

	case action.DoseLiquid:
		if cmd.Object != "" {
			s.Set(state.HasLiquid(cmd.Object), state.Bool(true))
			addAmount(s, state.LiquidAmount(cmd.Object), cmd.Value)
		}

	case action.CapContainer:
		if cmd.Object != "" {
			s.Set(state.Stopper(cmd.Object), state.Bool(true))
		}

	case action.DecapContainer:
		if cmd.Object != "" {
			s.Set(state.Stopper(cmd.Object), state.Bool(false))
		}

	case action.TransferSubstance:
		if cmd.ToContainer != "" {
			s.Set(state.HasLiquid(cmd.ToContainer), state.Bool(true))
			addAmount(s, state.LiquidAmount(cmd.ToContainer), cmd.Value)
		}
		if cmd.FromContainer != "" {
			addAmount(s, state.LiquidAmount(cmd.FromContainer), -cmd.Value)
			if v, ok := s.Get(state.LiquidAmount(cmd.FromContainer)); ok && v.AsFloat() <= 0 {
				s.Set(state.LiquidAmount(cmd.FromContainer), state.Float(0))
				s.Set(state.HasLiquid(cmd.FromContainer), state.Bool(false))
			}
		}

	case action.ReadStatus, action.RecordImage:
		// Observation only; no state change.
	}
}

// clearInside resets every robotArmInside flag of the arm (moving away
// from wherever it was).
func clearInside(s state.Store, lab LabModel, arm string) {
	if lab == nil {
		return
	}
	var hits []state.Key
	s.Range(func(k state.Key, _ state.Value) bool {
		if k.Variable() == "robotArmInside" {
			args := k.Args()
			if len(args) == 2 && args[0] == arm {
				hits = append(hits, k)
			}
		}
		return true
	})
	for _, k := range hits {
		s.Set(k, state.Bool(false))
	}
}

// applyPick models a grasp attempt: if the model believes an object rests
// where the arm stands (or the command names one), the arm now holds it.
func applyPick(s state.Store, cmd action.Command, lab LabModel) {
	arm := cmd.Device
	if s.GetBool(state.Holding(arm)) {
		return // already holding; a second close is a no-op
	}
	loc := s.GetString(state.ArmAt(arm))
	obj := cmd.Object
	if obj == "" && loc != "" {
		obj = s.GetString(state.ObjectAt(loc))
	}
	if obj == "" {
		return // closing on air
	}
	s.Set(state.Holding(arm), state.Bool(true))
	s.Set(state.HeldObject(arm), state.Str(obj))
	if loc != "" {
		s.Set(state.ObjectAt(loc), state.Str(""))
		if lab != nil {
			if owner, ok := lab.LocationOwner(loc); ok {
				if s.GetString(state.ContainerInside(owner)) == obj {
					s.Set(state.ContainerInside(owner), state.Str(""))
				}
			}
		}
	}
}

// applyPlace models a release: a held object lands at the arm's current
// named location (if any); with no known location beneath, the model can
// only record that the arm no longer holds it.
func applyPlace(s state.Store, cmd action.Command, lab LabModel) {
	arm := cmd.Device
	if !s.GetBool(state.Holding(arm)) {
		return // opening an empty gripper
	}
	obj := s.GetString(state.HeldObject(arm))
	s.Set(state.Holding(arm), state.Bool(false))
	s.Set(state.HeldObject(arm), state.Str(""))
	if obj == "" {
		return
	}
	loc := s.GetString(state.ArmAt(arm))
	if loc == "" {
		return
	}
	s.Set(state.ObjectAt(loc), state.Str(obj))
	if lab != nil {
		if owner, ok := lab.LocationOwner(loc); ok {
			s.Set(state.ContainerInside(owner), state.Str(obj))
		}
	}
}

// addAmount accumulates a float state variable.
func addAmount(s state.Store, k state.Key, delta float64) {
	cur := 0.0
	if v, ok := s.Get(k); ok {
		cur = v.AsFloat()
	}
	s.Set(k, state.Float(cur+delta))
}

// TransitionEntry documents one row of the state transition table, as in
// Table II of the paper.
type TransitionEntry struct {
	Example        string
	Preconditions  []string
	ActionLabel    action.Label
	Postconditions []string
}

// TransitionTable returns the Table II rows (the paper shows the robot-arm
// excerpt; the full table covers all device types).
func TransitionTable() []TransitionEntry {
	return []TransitionEntry{
		{
			Example:        "Moving a robot arm inside a specific device",
			Preconditions:  []string{"deviceDoorStatus[device] = 1"},
			ActionLabel:    action.MoveRobotInside,
			Postconditions: []string{"robotArmInside[robot][device] = 1"},
		},
		{
			Example:        "Using a robot arm to pick up an object (a vial in this case)",
			Preconditions:  []string{"robotArmHolding[robot] = 0"},
			ActionLabel:    action.PickObject,
			Postconditions: []string{"robotArmHolding[robot] = 1"},
		},
		{
			Example:        "Using a robot arm to place an object (a vial in this case)",
			Preconditions:  []string{"robotArmHolding[robot] = 1"},
			ActionLabel:    action.PlaceObject,
			Postconditions: []string{"robotArmHolding[robot] = 0"},
		},
		{
			Example:        "Opening a device door",
			Preconditions:  []string{"deviceRunning[device] = 0"},
			ActionLabel:    action.OpenDoor,
			Postconditions: []string{"deviceDoorStatus[device] = 1"},
		},
		{
			Example:        "Closing a device door",
			Preconditions:  []string{"robotArmInside[*][device] = 0"},
			ActionLabel:    action.CloseDoor,
			Postconditions: []string{"deviceDoorStatus[device] = 0"},
		},
		{
			Example:        "Starting an action device",
			Preconditions:  []string{"containerInside[device] != \"\"", "actionValue[device] <= threshold"},
			ActionLabel:    action.StartAction,
			Postconditions: []string{"deviceRunning[device] = 1"},
		},
		{
			Example:        "Dosing solid into the container inside a dosing system",
			Preconditions:  []string{"deviceDoorStatus[device] = 0", "amount fits container capacity"},
			ActionLabel:    action.DoseSolid,
			Postconditions: []string{"containerHasSolid[container] = 1"},
		},
	}
}
