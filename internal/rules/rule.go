package rules

import (
	"fmt"

	"repro/internal/action"
)

// Scope distinguishes the general rulebase (Table III) from lab-specific
// custom rules (Table IV) and engine-added preconditions.
type Scope int

// Rule scopes.
const (
	ScopeGeneral Scope = iota + 1
	ScopeCustom
	ScopeEngine // multiplexing preconditions added by the modified RABIT
)

// String names the scope.
func (s Scope) String() string {
	switch s {
	case ScopeGeneral:
		return "general"
	case ScopeCustom:
		return "custom"
	case ScopeEngine:
		return "engine"
	default:
		return "unknown"
	}
}

// Rule is one safety rule: an applicability filter plus a precondition
// check that either passes or yields a violation reason.
type Rule struct {
	// ID is a stable slug, e.g. "general-1".
	ID string
	// Scope and Number reproduce the paper's tables: general rules are
	// numbered 1–11 (Table III), custom rules 1–4 (Table IV).
	Scope  Scope
	Number int
	// Description is the rule text from the paper.
	Description string
	// AppliesTo reports whether the rule guards this command at all.
	AppliesTo func(cmd action.Command) bool
	// Check returns a non-empty reason when the command would violate
	// the rule in the given context.
	Check func(ctx *EvalContext) string
}

// Violation reports one rule violated by one command.
type Violation struct {
	Rule   *Rule
	Cmd    action.Command
	Reason string
}

// Error renders the violation as the alert text shown to the researcher.
func (v Violation) Error() string {
	return fmt.Sprintf("rule %s (%s #%d) violated by %s: %s — %s",
		v.Rule.ID, v.Rule.Scope, v.Rule.Number, v.Cmd, v.Rule.Description, v.Reason)
}

// Evaluate checks the command against the rule, returning a violation or
// nil.
func (r *Rule) Evaluate(ctx *EvalContext) *Violation {
	if r.AppliesTo != nil && !r.AppliesTo(ctx.Cmd) {
		return nil
	}
	if reason := r.Check(ctx); reason != "" {
		return &Violation{Rule: r, Cmd: ctx.Cmd, Reason: reason}
	}
	return nil
}

// appliesToLabels builds an applicability filter from a label set.
func appliesToLabels(labels ...action.Label) func(action.Command) bool {
	set := make(map[action.Label]bool, len(labels))
	for _, l := range labels {
		set[l] = true
	}
	return func(cmd action.Command) bool { return set[cmd.Action] }
}
