package rules

import (
	"fmt"

	"repro/internal/action"
)

// Scope distinguishes the general rulebase (Table III) from lab-specific
// custom rules (Table IV) and engine-added preconditions.
type Scope int

// Rule scopes.
const (
	ScopeGeneral Scope = iota + 1
	ScopeCustom
	ScopeEngine // multiplexing preconditions added by the modified RABIT
)

// String names the scope.
func (s Scope) String() string {
	switch s {
	case ScopeGeneral:
		return "general"
	case ScopeCustom:
		return "custom"
	case ScopeEngine:
		return "engine"
	default:
		return "unknown"
	}
}

// ReadScope classifies which slice of the model a rule's condition may
// read. The engine uses it to decide whether a command can be checked
// under its per-device shard locks or must take the global path.
type ReadScope int

// Read scopes. The zero value is deliberately the conservative one: a
// rule that does not declare its reads is assumed to range over the
// whole model, and every command it guards falls back to the global
// pipeline.
const (
	// ReadsGlobal marks a condition that may read state belonging to
	// devices the command does not name (e.g. rule 2 scans every arm's
	// robotArmInside flag before a door may close).
	ReadsGlobal ReadScope = iota
	// ReadsCommand marks a condition that only reads state of the
	// devices and containers the command itself addresses (its device,
	// object, transfer endpoints, and the container resolved inside its
	// device) — the property that makes shard-local validation sound.
	ReadsCommand
)

// Rule is one safety rule: an applicability filter plus a precondition
// check that either passes or yields a violation reason.
type Rule struct {
	// ID is a stable slug, e.g. "general-1".
	ID string
	// Scope and Number reproduce the paper's tables: general rules are
	// numbered 1–11 (Table III), custom rules 1–4 (Table IV).
	Scope  Scope
	Number int
	// Description is the rule text from the paper.
	Description string
	// Labels declares, for the rulebase index, the exhaustive set of
	// action labels the rule can fire for. It must cover AppliesTo: a
	// command whose label is not listed is never shown to the rule. A
	// nil Labels puts the rule in the catch-all bucket, evaluated for
	// every command.
	Labels []action.Label
	// Devices optionally restricts the rule to commands addressed to
	// these devices (the declarative-rule mechanism); empty means any
	// device. The rulebase compiles it into a set for O(1) filtering.
	Devices []string
	// Reads declares the rule's read scope (see ReadScope).
	Reads ReadScope
	// AppliesTo reports whether the rule guards this command at all.
	AppliesTo func(cmd action.Command) bool
	// Check returns a non-empty reason when the command would violate
	// the rule in the given context.
	Check func(ctx *EvalContext) string
	// Margin, when present, reports how close a passing command came to
	// violating the rule, as a fraction of the limit: 0 means exactly at
	// the threshold, 1 means maximally clear of it. The observed
	// validation path histograms it per rule (the near-miss signal), so
	// a lab drifting toward a violation shows up before the first alert.
	// Only consulted on non-firing evaluations; ok=false means no
	// meaningful margin exists for this command.
	Margin func(ctx *EvalContext) (margin float64, ok bool)

	// deviceSet is Devices compiled by NewRulebase.
	deviceSet map[string]bool
	// index is the rule's position in the rulebase's sorted rule list,
	// assigned by NewRulebase; RuleMetrics uses it for O(1) lookup of
	// the rule's cached instruments.
	index int
}

// matchesDevice reports whether the rule's device restriction admits the
// command (always true for unrestricted rules).
func (r *Rule) matchesDevice(cmd action.Command) bool {
	return len(r.deviceSet) == 0 || r.deviceSet[cmd.Device]
}

// Violation reports one rule violated by one command.
type Violation struct {
	Rule   *Rule
	Cmd    action.Command
	Reason string
}

// Error renders the violation as the alert text shown to the researcher.
func (v Violation) Error() string {
	return fmt.Sprintf("rule %s (%s #%d) violated by %s: %s — %s",
		v.Rule.ID, v.Rule.Scope, v.Rule.Number, v.Cmd, v.Rule.Description, v.Reason)
}

// Evaluate checks the command against the rule, returning a violation or
// nil. Labels and AppliesTo are both honoured, so evaluating a rule
// directly yields the same verdict as reaching it through the rulebase
// index.
func (r *Rule) Evaluate(ctx *EvalContext) *Violation {
	if r.Labels != nil && !r.declares(ctx.Cmd.Action) {
		return nil
	}
	if r.AppliesTo != nil && !r.AppliesTo(ctx.Cmd) {
		return nil
	}
	if reason := r.Check(ctx); reason != "" {
		return &Violation{Rule: r, Cmd: ctx.Cmd, Reason: reason}
	}
	return nil
}
