package rules

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/action"
	"repro/internal/geom"
	"repro/internal/state"
)

// randomCommand draws a plausible command from the fake lab's vocabulary.
func randomCommand(rng *rand.Rand) action.Command {
	arms := []string{"viperx", "ned2"}
	devices := []string{"dosing_device", "hotplate", "centrifuge", "pump"}
	objects := []string{"vial_1", "beaker", ""}
	locs := []string{"grid_NW", "dd_pickup", "hp_place", "cf_slot", ""}
	labels := []action.Label{
		action.MoveRobot, action.MoveRobotInside, action.MoveHome, action.MoveSleep,
		action.OpenGripper, action.CloseGripper, action.PickObject, action.PlaceObject,
		action.OpenDoor, action.CloseDoor, action.StartAction, action.StopAction,
		action.SetActionValue, action.DoseSolid, action.DoseLiquid, action.TransferSubstance,
	}
	cmd := action.Command{Action: labels[rng.Intn(len(labels))]}
	if cmd.Action.IsRobotMotion() || cmd.Action.IsManipulation() {
		cmd.Device = arms[rng.Intn(len(arms))]
	} else {
		cmd.Device = devices[rng.Intn(len(devices))]
	}
	if rng.Intn(2) == 0 {
		cmd.TargetName = locs[rng.Intn(len(locs))]
	} else {
		cmd.Target = geom.V(rng.Float64(), rng.Float64()-0.5, rng.Float64()*0.5)
	}
	cmd.Object = objects[rng.Intn(len(objects))]
	cmd.FromContainer = "beaker"
	cmd.ToContainer = "vial_1"
	cmd.Value = rng.Float64() * 200
	return cmd
}

// randomState perturbs the initial model with random variable flips.
func randomState(rng *rand.Rand) state.Snapshot {
	s := initialModel()
	flip := func(k state.Key) {
		s.Set(k, state.Bool(rng.Intn(2) == 0))
	}
	flip(state.DoorStatus("dosing_device"))
	flip(state.Running("dosing_device"))
	flip(state.Running("hotplate"))
	flip(state.Holding("viperx"))
	flip(state.ArmAsleep("ned2"))
	flip(state.HasSolid("vial_1"))
	flip(state.HasLiquid("beaker"))
	flip(state.Stopper("vial_1"))
	if s.GetBool(state.Holding("viperx")) {
		s.Set(state.HeldObject("viperx"), state.Str("vial_1"))
	}
	return s
}

// TestNormalizeIsIdempotent: normalising twice equals normalising once.
func TestNormalizeIsIdempotent(t *testing.T) {
	lab := newFakeLab()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		cmd := randomCommand(rng)
		once := NormalizeCommand(lab, cmd)
		twice := NormalizeCommand(lab, once)
		if !reflect.DeepEqual(once, twice) {
			t.Fatalf("not idempotent for %+v: %+v vs %+v", cmd, once, twice)
		}
	}
}

// TestValidateIsPureAndDeterministic: validation neither mutates the
// snapshot nor changes its verdict across calls.
func TestValidateIsPureAndDeterministic(t *testing.T) {
	rb := newRB(Config{Generation: GenModified, Multiplex: MultiplexTime})
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 300; i++ {
		s := randomState(rng)
		snapshot := s.Clone()
		cmd := NormalizeCommand(rb.Lab(), randomCommand(rng))
		v1 := rb.Validate(s, cmd)
		v2 := rb.Validate(s, cmd)
		if len(v1) != len(v2) {
			t.Fatalf("non-deterministic verdict for %v: %d vs %d", cmd, len(v1), len(v2))
		}
		if !reflect.DeepEqual(s, snapshot) {
			t.Fatalf("Validate mutated the state for %v", cmd)
		}
	}
}

// TestApplyIsDeterministicAndPure: UpdateState is a function.
func TestApplyIsDeterministicAndPure(t *testing.T) {
	lab := newFakeLab()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		s := randomState(rng)
		snapshot := s.Clone()
		cmd := NormalizeCommand(lab, randomCommand(rng))
		a := Apply(s, cmd, lab)
		b := Apply(s, cmd, lab)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Apply non-deterministic for %v", cmd)
		}
		if !reflect.DeepEqual(s, snapshot) {
			t.Fatalf("Apply mutated its input for %v", cmd)
		}
	}
}

// TestModifiedGenerationNeverRegresses: anything the initial RABIT flags,
// the modified RABIT flags too — the paper's modification only *adds*
// checks (held-object geometry, multiplexing).
func TestModifiedGenerationNeverRegresses(t *testing.T) {
	initial := newRB(Config{Generation: GenInitial, Multiplex: MultiplexNone})
	modified := newRB(Config{Generation: GenModified, Multiplex: MultiplexTime})
	rng := rand.New(rand.NewSource(14))
	flagged := 0
	for i := 0; i < 500; i++ {
		s := randomState(rng)
		cmd := NormalizeCommand(initial.Lab(), randomCommand(rng))
		vi := initial.Validate(s, cmd)
		if len(vi) == 0 {
			continue
		}
		flagged++
		vm := modified.Validate(s, cmd)
		if len(vm) == 0 {
			t.Fatalf("modified generation dropped a detection for %v (initial: %v)", cmd, vi)
		}
		// Every initial rule ID remains among the modified violations.
		got := map[string]bool{}
		for _, v := range vm {
			got[v.Rule.ID] = true
		}
		for _, v := range vi {
			if !got[v.Rule.ID] {
				t.Fatalf("modified generation lost rule %s for %v", v.Rule.ID, cmd)
			}
		}
	}
	if flagged < 50 {
		t.Fatalf("property exercised too rarely: %d flagged commands", flagged)
	}
}
