// Package rules implements RABIT's rulebase: the four-way device
// taxonomy of Section II-A, the state transition table (Table II), the
// eleven general rules of Table III, the four Hein-Lab custom rules of
// Table IV, and the time/space-multiplexing preconditions the paper added
// after the two-arm collision findings (Section IV, category 2).
//
// Rules evaluate over RABIT's *model* of the lab — a state.Snapshot plus
// the static facts the researcher configured in JSON (device types, doors,
// cuboids, locations, thresholds). They never touch ground truth.
package rules

import (
	"repro/internal/action"
	"repro/internal/geom"
	"repro/internal/state"
)

// DeviceType is the paper's four-way device classification.
type DeviceType int

// The four device types of Section II-A.
const (
	// TypeContainer is any object that can contain a substance and
	// typically has a stopper.
	TypeContainer DeviceType = iota + 1
	// TypeRobotArm moves between locations and can pick, move, and place
	// objects.
	TypeRobotArm
	// TypeDosingSystem adds substances into containers.
	TypeDosingSystem
	// TypeActionDevice has active/inactive states (heating, stirring,
	// shaking, spinning, capping…).
	TypeActionDevice
	// TypeSensor is the device class the paper's Section V-B sketches as
	// future work: a read-only device whose observations (e.g. a person
	// standing in a monitored zone) feed rule preconditions.
	TypeSensor
)

// String names the device type as the paper does.
func (t DeviceType) String() string {
	switch t {
	case TypeContainer:
		return "Container"
	case TypeRobotArm:
		return "Robot Arm"
	case TypeDosingSystem:
		return "Dosing System"
	case TypeActionDevice:
		return "Action Device"
	case TypeSensor:
		return "Sensor"
	default:
		return "Unknown"
	}
}

// NamedBox is a solid registered in some arm's frame — a deck device, or
// a sleeping arm modelled as a stationary object. By default the solid is
// the cuboid Box; devices configured with a rounded shape (cylinder,
// dome) additionally carry the inscribed capsule, which collision checks
// use instead — the Section V-C shape extension.
type NamedBox struct {
	Name string
	Box  geom.AABB
	// Rounded, when non-nil, replaces the box for collision purposes.
	Rounded *geom.Capsule
}

// IntersectsCapsule tests an arm capsule against the solid.
func (nb NamedBox) IntersectsCapsule(c geom.Capsule) bool {
	if nb.Rounded != nil {
		return geom.CapsuleCapsuleIntersect(c, *nb.Rounded)
	}
	return geom.CapsuleAABBIntersect(c, nb.Box)
}

// ArmGeom is the arm geometry RABIT is configured with: how far the
// gripper assembly reaches below a commanded tool centre point.
type ArmGeom struct {
	// FingerReach is fingerDrop + fingerRadius.
	FingerReach float64
	// FingerRadius is the gripper's collision radius for box tests.
	FingerRadius float64
}

// ObjectGeom is a container's configured geometry.
type ObjectGeom struct {
	// CarriedHang is how far the container's bottom hangs below the TCP
	// while gripped.
	CarriedHang float64
	Radius      float64
	// CapacityMg / CapacityML bound the contents (for rule 8 and the
	// dosing-overflow checks).
	CapacityMg float64
	CapacityML float64
}

// LabModel is everything the rulebase knows about the lab from its JSON
// configuration. It is RABIT's map of the world — deliberately partial
// (e.g. cross-arm geometry is absent because the testbed arms share no
// usable common frame; the paper measured ~3 cm of transform error).
type LabModel interface {
	// DeviceType returns the configured type of a device.
	DeviceType(id string) (DeviceType, bool)
	// DeviceHasDoor reports whether the device was configured with a door.
	DeviceHasDoor(id string) bool
	// DeviceDoors lists the device's door panel names: nil for doorless
	// devices, [""] for the common single-door case, and explicit names
	// for multi-door devices (the Section V-C extension).
	DeviceDoors(id string) []string
	// LocationDoor names the door panel that serves an inside location
	// ("" for the sole door).
	LocationDoor(loc string) string
	// ArmIDs lists the configured robot arms.
	ArmIDs() []string
	// LocationOwner returns the device hosting a named location.
	LocationOwner(loc string) (string, bool)
	// LocationIsInside reports whether the location lies inside its
	// owner (reaching it requires an open door).
	LocationIsInside(loc string) bool
	// LocationPos returns a named location's coordinates in the given
	// arm's frame.
	LocationPos(armID, loc string) (geom.Vec3, bool)
	// MatchLocation finds the configured location whose coordinates (in
	// the arm's frame) coincide with p. Experiment scripts carry their
	// own location tables (the Fig. 6 utilities file) and send raw
	// coordinates; RABIT re-derives the named location, which is how a
	// script-side coordinate edit (Bug D) silently turns a tracked named
	// move into an untracked raw one.
	MatchLocation(armID string, p geom.Vec3) (string, bool)
	// DeviceBoxes returns the cuboids registered in the arm's frame.
	DeviceBoxes(armID string) []NamedBox
	// SleepBox returns the cuboid another arm occupies when asleep,
	// expressed in armID's frame — the time-multiplexing model.
	SleepBox(armID, otherID string) (geom.AABB, bool)
	// ArmGeometry returns the arm's configured gripper geometry.
	ArmGeometry(armID string) ArmGeom
	// ObjectGeometry returns a container's configured geometry.
	ObjectGeometry(objectID string) (ObjectGeom, bool)
	// HostsContainers reports whether the device has any configured
	// container location (a slot, chuck, or plate). Rules 5–6 only make
	// sense for such devices; an ultrasonic nozzle performs its action
	// with no container inside it.
	HostsContainers(deviceID string) bool
	// ActionThreshold returns the configured maximum action value for an
	// action device (general rule 11).
	ActionThreshold(deviceID string) (float64, bool)
	// FloorZ returns the deck platform height in the arm's frame.
	FloorZ(armID string) float64
	// Walls returns the lab's wall planes in the arm's frame; the lab
	// interior is on each plane's positive side.
	Walls(armID string) []geom.Plane
	// Zone returns the arm's software wall for space multiplexing: the
	// arm must stay on the positive side. ok is false when no wall is
	// configured for this arm.
	Zone(armID string) (geom.Plane, bool)
}

// Generation selects which iteration of RABIT is running, following the
// paper's narrative: the initial deployment detected 8/16 injected bugs;
// after accounting for held-object dimensions and adding multiplexing
// preconditions it detected 12/16.
type Generation int

// RABIT generations.
const (
	// GenInitial is RABIT as first deployed: arm-only geometry, no
	// cross-arm preconditions.
	GenInitial Generation = iota + 1
	// GenModified adds the held-object geometry extension and the
	// time/space multiplexing preconditions.
	GenModified
)

// String names the generation.
func (g Generation) String() string {
	switch g {
	case GenInitial:
		return "initial"
	case GenModified:
		return "modified"
	default:
		return "unknown"
	}
}

// MultiplexPolicy selects how the modified generation prevents two-arm
// collisions.
type MultiplexPolicy int

// Multiplexing policies (Section IV, category 2).
const (
	// MultiplexNone performs no cross-arm checks (the initial RABIT).
	MultiplexNone MultiplexPolicy = iota + 1
	// MultiplexTime requires all other arms to be asleep (modelled as
	// cuboids) whenever an arm moves.
	MultiplexTime
	// MultiplexSpace gives each arm a software-walled zone it must stay
	// inside, allowing concurrent motion.
	MultiplexSpace
)

// String names the policy.
func (m MultiplexPolicy) String() string {
	switch m {
	case MultiplexNone:
		return "none"
	case MultiplexTime:
		return "time"
	case MultiplexSpace:
		return "space"
	default:
		return "unknown"
	}
}

// Config selects the rulebase variant under evaluation.
type Config struct {
	Generation Generation
	// Multiplex only applies to GenModified.
	Multiplex MultiplexPolicy
}

// HeldObjectAware reports whether geometric checks extend the arm volume
// by a held object's dimensions.
func (c Config) HeldObjectAware() bool { return c.Generation >= GenModified }

// EvalContext is what a rule's check inspects: the tracked model state,
// the command about to execute, the configured lab model, and the engine
// configuration. State is a read-only view so the engine can validate
// against either the flat model or a copy-on-write expectation.
type EvalContext struct {
	State state.View
	Cmd   action.Command
	Lab   LabModel
	Cfg   Config
}
