package rules

import (
	"fmt"

	"repro/internal/action"
	"repro/internal/state"
)

// HeinCustomRules returns the four Hein-Lab custom rules of Table IV,
// parameterised by the lab's centrifuge device ID.
func HeinCustomRules(centrifugeID string) []*Rule {
	return []*Rule{
		heinCustomRule1(),
		heinCustomRule2(centrifugeID),
		heinCustomRule3(centrifugeID),
		heinCustomRule4(centrifugeID),
	}
}

// Custom rule 1: Add liquid to a container only if the container already
// has solid.
func heinCustomRule1() *Rule {
	return &Rule{
		ID: "hein-1", Scope: ScopeCustom, Number: 1,
		Description: "Add liquid to a container only if the container already has solid",
		Labels:      []action.Label{action.DoseLiquid, action.TransferSubstance},
		Reads:       ReadsCommand,
		Check: func(ctx *EvalContext) string {
			c := ctx.Cmd.Object
			if ctx.Cmd.Action == action.TransferSubstance {
				c = ctx.Cmd.ToContainer
			}
			if c == "" {
				c = dosedContainer(ctx)
			}
			if c == "" {
				return ""
			}
			if !ctx.State.GetBool(state.HasSolid(c)) {
				return fmt.Sprintf("container %s has no solid yet", c)
			}
			return ""
		},
	}
}

// appliesToCentrifugePlacement matches any command that deposits a
// container into the centrifuge: the production-level semantic place, or
// a testbed gripper release while the arm stands at a centrifuge slot.
func appliesToCentrifugePlacement(centrifugeID string) func(ctx *EvalContext) bool {
	return func(ctx *EvalContext) bool {
		if !ctx.Cmd.Action.IsManipulation() {
			return false
		}
		if ctx.Cmd.Action == action.PickObject || ctx.Cmd.Action == action.CloseGripper {
			return false
		}
		_, dev := placedContainer(ctx)
		return dev == centrifugeID
	}
}

// heinCustomRule2: Place the container in the centrifuge only if the
// container contains both a solid and a liquid.
func heinCustomRule2(centrifugeID string) *Rule {
	match := appliesToCentrifugePlacement(centrifugeID)
	return &Rule{
		ID: "hein-2", Scope: ScopeCustom, Number: 2,
		Description: "Place the container in the centrifuge only if it contains both a solid and a liquid",
		Labels:      []action.Label{action.PlaceObject, action.OpenGripper},
		Check: func(ctx *EvalContext) string {
			if !match(ctx) {
				return ""
			}
			c, _ := placedContainer(ctx)
			if c == "" {
				return ""
			}
			if !ctx.State.GetBool(state.HasSolid(c)) || !ctx.State.GetBool(state.HasLiquid(c)) {
				return fmt.Sprintf("container %s does not contain both solid and liquid", c)
			}
			return ""
		},
	}
}

// heinCustomRule3: Place the container in the centrifuge only if the red
// dot on the centrifuge faces North.
func heinCustomRule3(centrifugeID string) *Rule {
	match := appliesToCentrifugePlacement(centrifugeID)
	return &Rule{
		ID: "hein-3", Scope: ScopeCustom, Number: 3,
		Description: "Place the container in the centrifuge only if the red dot on the centrifuge faces North",
		Labels:      []action.Label{action.PlaceObject, action.OpenGripper},
		Check: func(ctx *EvalContext) string {
			if !match(ctx) {
				return ""
			}
			if !ctx.State.GetBool(state.RedDotNorth(centrifugeID)) {
				return fmt.Sprintf("red dot on %s does not face North", centrifugeID)
			}
			return ""
		},
	}
}

// heinCustomRule4: Place the container in the centrifuge only if the
// container has a stopper on it.
func heinCustomRule4(centrifugeID string) *Rule {
	match := appliesToCentrifugePlacement(centrifugeID)
	return &Rule{
		ID: "hein-4", Scope: ScopeCustom, Number: 4,
		Description: "Place the container in the centrifuge only if the container has a stopper on it",
		Labels:      []action.Label{action.PlaceObject, action.OpenGripper},
		Check: func(ctx *EvalContext) string {
			if !match(ctx) {
				return ""
			}
			c, _ := placedContainer(ctx)
			if c == "" {
				return ""
			}
			if !ctx.State.GetBool(state.Stopper(c)) {
				return fmt.Sprintf("container %s has no stopper on", c)
			}
			return ""
		},
	}
}

// MultiplexRules returns the engine preconditions the modified RABIT adds
// for multi-arm decks, per the configured policy.
func MultiplexRules(policy MultiplexPolicy) []*Rule {
	switch policy {
	case MultiplexTime:
		return []*Rule{{
			ID: "mux-time", Scope: ScopeEngine, Number: 1,
			Description: "Time multiplexing: only one arm may be out of its sleep pose",
			Labels:      []action.Label{action.MoveRobot, action.MoveRobotInside, action.MoveHome},
			Check:       checkOthersAsleep,
		}}
	case MultiplexSpace:
		return []*Rule{{
			ID: "mux-space", Scope: ScopeEngine, Number: 2,
			Description: "Space multiplexing: each arm must stay inside its software-walled zone",
			Labels:      []action.Label{action.MoveRobot, action.MoveRobotInside},
			Check:       checkWithinZone,
		}}
	default:
		return nil
	}
}

// VarRequirement is one declaratively configured requirement: the state
// variable named by Var (after substituting $device and $object with the
// command's fields) must equal Equals.
type VarRequirement struct {
	Var    string      `json:"var"`
	Arg    string      `json:"arg"`    // "$device", "$object", or a literal
	Arg2   string      `json:"arg2"`   // optional second qualifier
	Equals state.Value `json:"equals"` // required value
}

// resolveArg substitutes command fields into a requirement argument.
func resolveArg(arg string, cmd action.Command) string {
	switch arg {
	case "$device":
		return cmd.Device
	case "$object":
		return cmd.Object
	case "$inside_device":
		return cmd.InsideDevice
	case "$target":
		return cmd.TargetName
	default:
		return arg
	}
}

// NewDeclarativeRule builds a custom rule from JSON-configurable parts —
// the mechanism lab researchers use to add their own rules (Section II-C
// and the pilot study, where participant P entered a custom rule).
// devices restricts the rule to commands addressed to those devices
// (empty = any device).
func NewDeclarativeRule(id, description string, number int, labels []action.Label, devices []string, reqs []VarRequirement) *Rule {
	// The rule's reads are command-scoped only when every requirement
	// addresses the commanded device or object; a literal qualifier (or a
	// location/inside-device one) may name some other device, so such
	// rules conservatively read globally and their commands take the
	// engine's global path.
	argLocal := func(a string) bool { return a == "$device" || a == "$object" }
	reads := ReadsCommand
	for _, req := range reqs {
		if !argLocal(req.Arg) || (req.Arg2 != "" && !argLocal(req.Arg2)) {
			reads = ReadsGlobal
		}
	}
	return &Rule{
		ID: id, Scope: ScopeCustom, Number: number,
		Description: description,
		Labels:      labels,
		Devices:     devices,
		Reads:       reads,
		AppliesTo: func(cmd action.Command) bool {
			// Label and device filtering live in Labels/Devices (the
			// rulebase index); a directly-evaluated rule still honours
			// Labels via Evaluate. Devices are re-checked here so the
			// rule is self-contained outside a rulebase too.
			for _, d := range devices {
				if cmd.Device == d {
					return true
				}
			}
			return len(devices) == 0
		},
		Check: func(ctx *EvalContext) string {
			for _, req := range reqs {
				args := make([]string, 0, 2)
				if req.Arg != "" {
					args = append(args, resolveArg(req.Arg, ctx.Cmd))
				}
				if req.Arg2 != "" {
					args = append(args, resolveArg(req.Arg2, ctx.Cmd))
				}
				key := state.MakeKey(req.Var, args...)
				got, ok := ctx.State.Get(key)
				if !ok || !got.Equal(req.Equals) {
					return fmt.Sprintf("%s is %v, required %v", key, got, req.Equals)
				}
			}
			return ""
		},
	}
}
