package kin

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Model identifies a supported robot-arm model.
type Model int

// Supported arm models. The UR3e is the Hein Lab production arm, the
// ViperX 300 and Niryo Ned2 are the testbed arms (Fig. 4), and the UR5e
// and N9 appear in the Berlinguette Lab (Section V-B).
const (
	ModelUR3e Model = iota + 1
	ModelUR5e
	ModelViperX300
	ModelNed2
	ModelN9
)

// String returns the vendor model name.
func (m Model) String() string {
	switch m {
	case ModelUR3e:
		return "UR3e"
	case ModelUR5e:
		return "UR5e"
	case ModelViperX300:
		return "ViperX 300"
	case ModelNed2:
		return "Ned2"
	case ModelN9:
		return "N9"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ParseModel maps a configuration string (as used in the JSON device
// configs) to a Model.
func ParseModel(s string) (Model, error) {
	switch s {
	case "ur3e", "UR3e":
		return ModelUR3e, nil
	case "ur5e", "UR5e":
		return ModelUR5e, nil
	case "viperx", "viperx300", "ViperX 300", "ViperX":
		return ModelViperX300, nil
	case "ned2", "Ned2":
		return ModelNed2, nil
	case "n9", "N9":
		return ModelN9, nil
	default:
		return 0, fmt.Errorf("kin: unknown arm model %q", s)
	}
}

// Profile bundles a chain with its canonical configurations.
type Profile struct {
	Model Model
	Chain *Chain
	// Home is the parked-above-deck configuration wrappers return to
	// between steps (go_to_home_pose in Fig. 5).
	Home []float64
	// Sleep is the folded-down configuration (go_to_sleep_pose); when an
	// arm sleeps, the time-multiplexing policy models it as a cuboid.
	Sleep []float64
	// SleepDims is the cuboid (full extents) that encloses the arm when
	// folded in its sleep pose, used by the multiplexing preconditions.
	SleepDims geom.Vec3
}

const twoPi = 2 * math.Pi

// NewProfile builds the named arm mounted with the given base pose. The
// canonical Home (parked above the deck) and Sleep (folded low) joint
// configurations are solved deterministically from base-relative anchor
// points, so every mounting pose gets sensible poses.
func NewProfile(m Model, base geom.Pose) (*Profile, error) {
	var p *Profile
	switch m {
	case ModelUR3e:
		p = newURProfile(m, base,
			0.15185, -0.24355, -0.2132, 0.13105, 0.08535, 0.0921,
			0.045, math.Pi, 0.00003)
	case ModelUR5e:
		p = newURProfile(m, base,
			0.1625, -0.425, -0.3922, 0.1333, 0.0997, 0.0996,
			0.055, math.Pi, 0.00003)
	case ModelViperX300:
		p = newEduProfile(m, base, 0.127, 0.306, 0.300, 0.170,
			0.035, math.Pi*0.8, 0.001)
	case ModelNed2:
		p = newEduProfile(m, base, 0.170, 0.221, 0.235, 0.120,
			0.030, math.Pi*0.7, 0.0005)
	case ModelN9:
		p = newEduProfile(m, base, 0.140, 0.250, 0.250, 0.110,
			0.030, math.Pi*0.8, 0.0002)
	default:
		return nil, fmt.Errorf("kin: unknown model %v", m)
	}
	if err := p.solveCanonicalPoses(); err != nil {
		return nil, fmt.Errorf("kin: %v profile: %w", m, err)
	}
	return p, nil
}

// homeAnchor and sleepAnchor are the base-relative TCP anchor points the
// canonical poses are solved for: Home holds the tool ~35 cm above the
// mounting platform, Sleep folds it low near the base.
var (
	homeAnchor  = geom.V(0.25, 0, 0.35)
	sleepAnchor = geom.V(0.12, 0, 0.15)
)

// solveCanonicalPoses fills in Home and Sleep with IK solutions.
func (p *Profile) solveCanonicalPoses() error {
	seed := p.Home
	if len(seed) != p.Chain.DOF() {
		seed = make([]float64, p.Chain.DOF())
	}
	home, err := p.Chain.Solve(p.Chain.Base.Apply(homeAnchor), seed, DefaultIKOptions())
	if err != nil {
		return fmt.Errorf("solve home pose: %w", err)
	}
	sleep, err := p.Chain.Solve(p.Chain.Base.Apply(sleepAnchor), home, DefaultIKOptions())
	if err != nil {
		return fmt.Errorf("solve sleep pose: %w", err)
	}
	p.Home, p.Sleep = home, sleep
	return nil
}

// newURProfile builds a Universal Robots e-series chain from its published
// standard DH parameters.
func newURProfile(m Model, base geom.Pose, d1, a2, a3, d4, d5, d6, radius, speed, repeat float64) *Profile {
	ch := &Chain{
		Name: m.String(),
		Base: base,
		Links: []DHLink{
			{D: d1, Alpha: math.Pi / 2, Radius: radius, MinAngle: -twoPi, MaxAngle: twoPi},
			{A: a2, Radius: radius, MinAngle: -twoPi, MaxAngle: twoPi},
			{A: a3, Radius: radius * 0.8, MinAngle: -twoPi, MaxAngle: twoPi},
			{D: d4, Alpha: math.Pi / 2, Radius: radius * 0.7, MinAngle: -twoPi, MaxAngle: twoPi},
			{D: d5, Alpha: -math.Pi / 2, Radius: radius * 0.7, MinAngle: -twoPi, MaxAngle: twoPi},
			{D: d6, Radius: radius * 0.6, MinAngle: -twoPi, MaxAngle: twoPi},
		},
		MaxJointSpeed: speed,
		Repeatability: repeat,
	}
	return &Profile{
		Model: m,
		Chain: ch,
		// Elbow-up pose holding the tool above the deck.
		Home:      []float64{0, -math.Pi / 2, -math.Pi / 2, -math.Pi / 2, math.Pi / 2, 0},
		Sleep:     []float64{0, -math.Pi * 0.75, -2.2, -math.Pi / 2, math.Pi / 2, 0},
		SleepDims: geom.V(0.30, 0.30, 0.35),
	}
}

// newEduProfile builds a generic educational six-axis arm (ViperX / Ned2 /
// N9 class): a vertical shoulder column, two main links, and a wrist.
func newEduProfile(m Model, base geom.Pose, d1, a2, a3, d6, radius, speed, repeat float64) *Profile {
	lim := math.Pi * 0.97
	ch := &Chain{
		Name: m.String(),
		Base: base,
		Links: []DHLink{
			{D: d1, Alpha: math.Pi / 2, Radius: radius, MinAngle: -lim, MaxAngle: lim},
			{A: a2, Radius: radius, Offset: -math.Pi / 2, MinAngle: -lim, MaxAngle: lim},
			{A: a3, Radius: radius * 0.8, MinAngle: -lim, MaxAngle: lim},
			{D: 0, Alpha: math.Pi / 2, Radius: radius * 0.7, MinAngle: -lim, MaxAngle: lim},
			{D: 0, Alpha: -math.Pi / 2, Radius: radius * 0.7, MinAngle: -lim, MaxAngle: lim},
			{D: d6, Radius: radius * 0.6, MinAngle: -lim, MaxAngle: lim},
		},
		MaxJointSpeed: speed,
		Repeatability: repeat,
	}
	return &Profile{
		Model: m,
		Chain: ch,
		// Elbow-up, tool forward and above the deck.
		Home:      []float64{0, 0.4, -0.8, 0, 0.4, 0},
		Sleep:     []float64{0, 1.2, -2.4, 0, 1.1, 0},
		SleepDims: geom.V(0.25, 0.25, 0.25),
	}
}

// SleepBox returns the cuboid occupied by the arm folded at its base,
// used when a sleeping arm is modelled as a stationary 3D object for
// time multiplexing (Section IV, category 2).
func (p *Profile) SleepBox() geom.AABB {
	c := p.Chain.Base.T.Add(geom.V(0, 0, p.SleepDims.Z/2))
	return geom.BoxAt(c, p.SleepDims)
}
