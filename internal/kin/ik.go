package kin

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/geom"
)

// ikFallbackWarmHits counts orientation fallbacks resolved by the single
// warm-started position-only descent rather than a second restart
// schedule. Test observability for the fallback fast path.
var ikFallbackWarmHits atomic.Int64

// ErrUnreachable is returned when inverse kinematics cannot find a joint
// configuration that reaches the target within tolerance. How an arm's
// firmware reacts to this differs per vendor — the paper observed that the
// ViperX silently skips the command while the Ned2 raises and halts — and
// that difference is reproduced by the device drivers, not here.
var ErrUnreachable = errors.New("kin: target unreachable")

// IKOptions tunes the damped-least-squares solver.
type IKOptions struct {
	// Tol is the acceptable Cartesian position error (m).
	Tol float64
	// MaxIters bounds solver iterations per restart.
	MaxIters int
	// Restarts is the number of deterministic seed restarts tried before
	// giving up.
	Restarts int
	// Lambda is the damping factor.
	Lambda float64
	// OrientWeight softly biases the solution so that the tool axis
	// aligns with ToolAxis (metres of equivalent error per radian of
	// misalignment). Zero disables the bias. The bias is soft: only the
	// position residual gates success, so cramped targets that cannot be
	// reached tool-down still solve.
	OrientWeight float64
	// ToolAxis is the preferred tool direction; lab arms work top-down,
	// so the default points straight at the deck.
	ToolAxis geom.Vec3
}

// DefaultIKOptions returns solver settings adequate for lab-deck targets:
// millimetre tolerance, a few hundred iterations, a handful of restarts,
// and a top-down tool preference that keeps wrists above grip points.
func DefaultIKOptions() IKOptions {
	return IKOptions{
		Tol:          1e-3,
		MaxIters:     300,
		Restarts:     6,
		Lambda:       0.35,
		OrientWeight: 0.2,
		ToolAxis:     geom.V(0, 0, -1),
	}
}

// Solve runs damped-least-squares IK for the end-effector position target,
// seeded from q0. It returns a joint configuration within limits whose
// end-effector is within Tol of target, or ErrUnreachable.
func (c *Chain) Solve(target geom.Vec3, q0 []float64, opt IKOptions) ([]float64, error) {
	if len(q0) != len(c.Links) {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDOFMismatch, len(q0), len(c.Links))
	}
	if !target.IsFinite() {
		return nil, fmt.Errorf("%w: non-finite target %v", ErrUnreachable, target)
	}
	// Quick reachability reject: target beyond the arm's maximum reach.
	if target.Dist(c.Base.T) > c.Reach()+opt.Tol {
		return nil, fmt.Errorf("%w: target %v is %.3f m from base, reach is %.3f m",
			ErrUnreachable, target, target.Dist(c.Base.T), c.Reach())
	}

	n := len(c.Links)
	// Seeds are generated lazily — the q0 seed usually converges and the
	// restart seeds never materialise. scratch is shared by every restart;
	// only a new best solution is copied out.
	sc := newIKScratch(n, opt)
	seed := make([]float64, n)

	var best []float64
	var bestFail []float64
	bestScore := math.Inf(1)
	bestPosErr := math.Inf(1)
	for r := 0; r <= opt.Restarts; r++ {
		if r == 0 {
			copy(seed, q0)
		} else {
			// Deterministic spread of seeds across the joint space.
			for i, l := range c.Links {
				span := l.MaxAngle - l.MinAngle
				frac := math.Mod(0.318*float64(r)+0.618*float64(i+1), 1.0)
				seed[i] = l.MinAngle + span*frac
			}
		}
		q, posErr, axErr := c.solveFrom(target, seed, opt, sc)
		if posErr > opt.Tol {
			// Track in case nothing converges: the residual for error
			// reporting, the configuration to warm-start the
			// orientation fallback.
			if posErr < bestPosErr {
				bestPosErr = posErr
				if opt.OrientWeight > 0 {
					bestFail = append(bestFail[:0], q...)
				}
			}
			continue
		}
		// Among converged solutions, prefer the best tool alignment.
		score := axErr
		if score < bestScore {
			bestScore = score
			best = append(best[:0], q...)
			bestPosErr = posErr
		}
		if opt.OrientWeight == 0 || score < 0.1 {
			break
		}
	}
	if best == nil {
		if opt.OrientWeight > 0 {
			// The tool-down preference is soft: if no seed converged with
			// it, solve for position alone rather than reporting an
			// unreachable target. A position-only schedule almost always
			// succeeds on its very first descent (from q0), so run that
			// descent alone; if it misses, the weighted schedule already
			// got close in position somewhere — one descent from its best
			// configuration usually lands inside Tol. Only when both
			// single descents miss does a second full restart schedule
			// run.
			bare := opt
			bare.OrientWeight = 0
			scBare := newIKScratch(n, bare)
			q, posErr, _ := c.solveFrom(target, q0, bare, scBare)
			if posErr <= bare.Tol {
				return append([]float64(nil), q...), nil
			}
			if bestFail != nil {
				q, posErr, _ = c.solveFrom(target, bestFail, bare, scBare)
				if posErr <= bare.Tol {
					ikFallbackWarmHits.Add(1)
					return append([]float64(nil), q...), nil
				}
			}
			return c.Solve(target, q0, bare)
		}
		return nil, fmt.Errorf("%w: best residual %.4f m > tol %.4f m for target %v",
			ErrUnreachable, bestPosErr, opt.Tol, target)
	}
	return best, nil
}

// ikScratch holds every buffer one DLS solve needs, so the iteration loop
// (Jacobian, normal matrix, linear solve, residual, clamp) allocates
// nothing. One scratch serves all of a Solve call's restarts.
type ikScratch struct {
	q    []float64   // current configuration
	e    []float64   // task residual
	j    [][]float64 // rows×n Jacobian
	jjt  [][]float64 // rows×rows normal matrix
	aug  [][]float64 // rows×(rows+1) augmented matrix for elimination
	w    []float64   // linear-solve result
	orig []geom.Vec3 // joint frame origins
	axes []geom.Vec3 // joint axes
}

func newIKScratch(n int, opt IKOptions) *ikScratch {
	rows := 3
	if opt.OrientWeight > 0 && opt.ToolAxis.Norm() > 0 {
		rows = 6
	}
	sc := &ikScratch{
		q:    make([]float64, n),
		e:    make([]float64, rows),
		j:    make([][]float64, rows),
		jjt:  make([][]float64, rows),
		aug:  make([][]float64, rows),
		w:    make([]float64, rows),
		orig: make([]geom.Vec3, n),
		axes: make([]geom.Vec3, n),
	}
	for r := 0; r < rows; r++ {
		sc.j[r] = make([]float64, n)
		sc.jjt[r] = make([]float64, rows)
		sc.aug[r] = make([]float64, rows+1)
	}
	return sc
}

// solveFrom iterates DLS from one seed; it returns the best configuration
// found (aliasing sc.q — callers must copy to retain it), its position
// residual, and its tool-axis misalignment (rad).
func (c *Chain) solveFrom(target geom.Vec3, seed []float64, opt IKOptions, sc *ikScratch) ([]float64, float64, float64) {
	n := len(c.Links)
	q := sc.q
	copy(q, seed)
	lambda2 := opt.Lambda * opt.Lambda
	useOrient := opt.OrientWeight > 0 && opt.ToolAxis.Norm() > 0
	rows := 3
	if useOrient {
		rows = 6
	}
	want := opt.ToolAxis.Unit()

	residual := func(q []float64) ([]float64, float64, float64, bool) {
		pose, err := c.Forward(q)
		if err != nil {
			return nil, math.Inf(1), math.Inf(1), false
		}
		e := sc.e
		pe := target.Sub(pose.T)
		e[0], e[1], e[2] = pe.X, pe.Y, pe.Z
		axErr := 0.0
		if useOrient {
			axis := pose.R.Col(2)
			// Least-squares on the axis vector itself: e = want − axis.
			// (A cross-product formulation has zero gradient when the
			// axis is exactly anti-parallel to the preference.)
			diff := want.Sub(axis)
			axErr = math.Acos(math.Max(-1, math.Min(1, axis.Dot(want))))
			e[3] = opt.OrientWeight * diff.X
			e[4] = opt.OrientWeight * diff.Y
			e[5] = opt.OrientWeight * diff.Z
		}
		return e, pe.Norm(), axErr, true
	}

	e, posErr, axErr, ok := residual(q)
	if !ok {
		return q, math.Inf(1), math.Inf(1)
	}

	for iter := 0; iter < opt.MaxIters && (posErr > opt.Tol || (useOrient && axErr > 0.05 && iter < opt.MaxIters/2)); iter++ {
		j := c.taskJacobianInto(q, rows, opt.OrientWeight, sc)
		// dq = Jᵀ (J Jᵀ + λ² I)⁻¹ e
		jjt := sc.jjt
		for r := 0; r < rows; r++ {
			for s := 0; s < rows; s++ {
				var sum float64
				for k := 0; k < n; k++ {
					sum += j[r][k] * j[s][k]
				}
				jjt[r][s] = sum
			}
			jjt[r][r] += lambda2
		}
		w, ok := solveLinearInto(jjt, e, sc.aug, sc.w)
		if !ok {
			break
		}
		for k := 0; k < n; k++ {
			var dq float64
			for r := 0; r < rows; r++ {
				dq += j[r][k] * w[r]
			}
			q[k] += dq
		}
		c.clampJointsInPlace(q)
		e, posErr, axErr, ok = residual(q)
		if !ok {
			return q, math.Inf(1), math.Inf(1)
		}
	}
	return q, posErr, axErr
}

// taskJacobianInto fills sc.j with the rows×n Jacobian: position rows
// always, plus tool-axis rows (scaled by orientWeight) when rows == 6.
func (c *Chain) taskJacobianInto(q []float64, rows int, orientWeight float64, sc *ikScratch) [][]float64 {
	n := len(c.Links)
	j := sc.j
	cur := c.Base
	origins, axes := sc.orig, sc.axes
	for i, l := range c.Links {
		origins[i] = cur.T
		axes[i] = cur.R.Col(2) // joint axis is local Z
		cur = cur.Compose(linkTransform(l, q[i]))
	}
	ee := cur.T
	tool := cur.R.Col(2)
	for i := 0; i < n; i++ {
		col := axes[i].Cross(ee.Sub(origins[i]))
		j[0][i], j[1][i], j[2][i] = col.X, col.Y, col.Z
		if rows == 6 {
			// d(tool)/dq_i = z_i × tool; the residual uses tool × want,
			// whose derivative we approximate by the axis velocity term.
			av := axes[i].Cross(tool)
			j[3][i] = orientWeight * av.X
			j[4][i] = orientWeight * av.Y
			j[5][i] = orientWeight * av.Z
		}
	}
	return j
}

// solveLinearInto solves A·x = b by Gaussian elimination with partial
// pivoting, writing the augmented matrix into m (n rows of n+1) and the
// solution into x — allocation-free for the IK iteration. A is
// untouched; ok is false when A is singular.
func solveLinearInto(a [][]float64, b []float64, m [][]float64, x []float64) ([]float64, bool) {
	n := len(a)
	for i := range a {
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-15 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for k := col; k <= n; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	for r := n - 1; r >= 0; r-- {
		sum := m[r][n]
		for k := r + 1; k < n; k++ {
			sum -= m[r][k] * x[k]
		}
		x[r] = sum / m[r][r]
	}
	return x, true
}
