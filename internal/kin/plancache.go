package kin

import (
	"container/list"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
)

// Quantization granularity for plan-cache keys. Start configurations and
// targets are snapped to these grids before keying, so bit-level float
// noise (formatting round-trips, dead-reckoned joint echoes) cannot split
// what is physically the same move across keys. Both quanta sit an order
// of magnitude below DefaultIKOptions.Tol (1 mm): two queries that map to
// the same key differ by less than the solver tolerance, so serving one's
// solution for the other stays within the solve contract.
const (
	// JointQuantum is the start-configuration grid (rad).
	JointQuantum = 1e-4
	// TargetQuantum is the Cartesian target grid (m) — 0.1 mm.
	TargetQuantum = 1e-4
)

// WarmStartRadius bounds how far (m) a cached solution's target may be
// from a new query's target and still be offered as a DLS seed.
const WarmStartRadius = 0.25

// PlanCacheStats is a point-in-time snapshot of cache effectiveness.
type PlanCacheStats struct {
	// Hits is the number of Plan calls answered from the cache.
	Hits int64
	// Misses is the number of Plan calls that had to solve.
	Misses int64
	// Evictions is the number of entries dropped by the LRU bound.
	Evictions int64
	// WarmStarts is the number of misses resolved by a single DLS solve
	// seeded from a cache-adjacent solution instead of the restart
	// schedule.
	WarmStarts int64
}

// PlanCache memoizes PlanJointMove solutions behind a bounded LRU. Keys
// are (chain identity, quantized start configuration, quantized target,
// IK-options fingerprint); values are the solved goal configurations.
// A hit returns a fresh Trajectory sharing no mutable state with the
// cache, so callers may treat it exactly like a cold plan.
//
// On a miss the cache can additionally warm-start the solver: the cached
// solution with the nearest target (same chain, same options, within
// WarmStartRadius) seeds one DLS descent, and only if that descent fails
// the solve contract — position within Tol, and tool axis within the
// same 0.1 rad bar Solve's own restart loop accepts early — does the
// full restart schedule run. Warm starts return a possibly different
// (equally valid) IK branch than the cold schedule; disable with
// SetWarmStart(false) where bit-identical cold behaviour is required.
//
// A PlanCache is safe for concurrent use; the IK solve itself runs
// outside the cache lock.
type PlanCache struct {
	mu    sync.Mutex
	cap   int
	warm  bool
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits       atomic.Int64
	misses     atomic.Int64
	evictions  atomic.Int64
	warmStarts atomic.Int64

	// Optional external counters mirroring the stats (set once before
	// concurrent use; *obs.Counter satisfies the interface).
	cHits, cMisses, cEvictions, cWarmStarts CacheCounter
}

// CacheCounter is the narrow event-sink a PlanCache publishes to — the
// shape of obs.Counter, declared here so kin does not depend on the
// telemetry package.
type CacheCounter interface{ Add(n int64) }

// planEntry is one cached solution. to is owned by the cache and never
// handed out by reference.
type planEntry struct {
	key    string
	group  string // chain + options fingerprint, for warm-start scans
	target geom.Vec3
	to     []float64
}

// DefaultPlanCacheCapacity bounds the cache when the caller does not
// choose: a deck has tens of stations and each arm a handful of resting
// configurations, so a few hundred entries hold a whole run's working
// set.
const DefaultPlanCacheCapacity = 512

// NewPlanCache returns an empty cache holding at most capacity entries
// (DefaultPlanCacheCapacity if capacity <= 0), with warm-start seeding
// enabled.
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheCapacity
	}
	return &PlanCache{
		cap:   capacity,
		warm:  true,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// SetCounters mirrors future cache events into external counters
// (telemetry). Call before the cache sees concurrent use; nil counters
// are allowed.
func (p *PlanCache) SetCounters(hits, misses, evictions, warmStarts CacheCounter) {
	p.mu.Lock()
	p.cHits, p.cMisses, p.cEvictions, p.cWarmStarts = hits, misses, evictions, warmStarts
	p.mu.Unlock()
}

// count bumps an internal stat and its external mirror, if any.
func count(stat *atomic.Int64, c CacheCounter) {
	stat.Add(1)
	if c != nil {
		c.Add(1)
	}
}

// SetWarmStart toggles nearest-neighbor warm-start seeding on miss.
func (p *PlanCache) SetWarmStart(on bool) {
	p.mu.Lock()
	p.warm = on
	p.mu.Unlock()
}

// Stats returns current counters.
func (p *PlanCache) Stats() PlanCacheStats {
	return PlanCacheStats{
		Hits:       p.hits.Load(),
		Misses:     p.misses.Load(),
		Evictions:  p.evictions.Load(),
		WarmStarts: p.warmStarts.Load(),
	}
}

// Len returns the number of cached solutions.
func (p *PlanCache) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ll.Len()
}

// Key returns the cache key Plan would use — exported for layers that
// key their own state (the simulator's verdict cache) on the same
// identity.
func (p *PlanCache) Key(c *Chain, from []float64, target geom.Vec3, opt IKOptions) string {
	return string(appendPlanKey(nil, c, from, target, opt))
}

// Plan returns the trajectory from from to the IK solution of target,
// serving a memoized solution when one exists and solving (warm-started
// when possible) otherwise. Errors are never cached.
func (p *PlanCache) Plan(c *Chain, from []float64, target geom.Vec3, opt IKOptions) (*Trajectory, error) {
	group := appendGroupKey(nil, c, opt)
	key := appendMoveKey(group, from, target)

	p.mu.Lock()
	if el, ok := p.items[string(key)]; ok {
		p.ll.MoveToFront(el)
		to := append([]float64(nil), el.Value.(*planEntry).to...)
		count(&p.hits, p.cHits)
		p.mu.Unlock()
		return &Trajectory{Chain: c, From: from, To: to}, nil
	}
	var seed []float64
	if p.warm {
		seed = p.nearestLocked(string(group), target)
	}
	count(&p.misses, p.cMisses)
	p.mu.Unlock()

	tr, warmed, err := p.solve(c, from, target, opt, seed)
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	if warmed {
		count(&p.warmStarts, p.cWarmStarts)
	}
	if _, ok := p.items[string(key)]; !ok {
		el := p.ll.PushFront(&planEntry{
			key:    string(key),
			group:  string(group),
			target: target,
			to:     append([]float64(nil), tr.To...),
		})
		p.items[string(key)] = el
		for p.ll.Len() > p.cap {
			oldest := p.ll.Back()
			p.ll.Remove(oldest)
			delete(p.items, oldest.Value.(*planEntry).key)
			count(&p.evictions, p.cEvictions)
		}
	}
	p.mu.Unlock()
	return tr, nil
}

// nearestLocked returns a copy of the cached goal configuration whose
// target is nearest to target within the same group, or nil if none is
// inside WarmStartRadius. Caller holds p.mu.
func (p *PlanCache) nearestLocked(group string, target geom.Vec3) []float64 {
	bestDist := WarmStartRadius
	var best *planEntry
	for el := p.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*planEntry)
		if e.group != group {
			continue
		}
		if d := e.target.Dist(target); d <= bestDist {
			bestDist, best = d, e
		}
	}
	if best == nil {
		return nil
	}
	return append([]float64(nil), best.to...)
}

// solve runs the actual planning for a miss. With a warm seed it tries a
// single DLS descent from the seed first, accepting only solutions that
// meet Solve's own early-accept bar; anything else falls through to the
// cold PlanJointMove path.
func (p *PlanCache) solve(c *Chain, from []float64, target geom.Vec3, opt IKOptions, seed []float64) (*Trajectory, bool, error) {
	if seed == nil || len(seed) != len(c.Links) {
		tr, err := c.PlanJointMove(from, target, opt)
		return tr, false, err
	}
	if err := c.CheckJoints(from); err != nil {
		tr, err := c.PlanJointMove(from, target, opt)
		return tr, false, err
	}
	// Mirror Solve's cheap rejects so warm starts never spend MaxIters
	// on a target the cold path refuses immediately.
	if !target.IsFinite() || target.Dist(c.Base.T) > c.Reach()+opt.Tol {
		tr, err := c.PlanJointMove(from, target, opt)
		return tr, false, err
	}
	sc := newIKScratch(len(c.Links), opt)
	q, posErr, axErr := c.solveFrom(target, seed, opt, sc)
	if posErr <= opt.Tol && (opt.OrientWeight == 0 || axErr < 0.1) {
		return &Trajectory{Chain: c, From: from, To: append([]float64(nil), q...)}, true, nil
	}
	tr, err := c.PlanJointMove(from, target, opt)
	return tr, false, err
}

// appendGroupKey appends the chain-identity and options fingerprint:
// everything that must match for two solutions to be interchangeable,
// independent of the specific move.
func appendGroupKey(b []byte, c *Chain, opt IKOptions) []byte {
	b = append(b, c.Name...)
	b = append(b, '@')
	b = appendQuantized(b, c.Base.T.X, TargetQuantum)
	b = appendQuantized(b, c.Base.T.Y, TargetQuantum)
	b = appendQuantized(b, c.Base.T.Z, TargetQuantum)
	b = append(b, '#')
	b = strconv.AppendInt(b, int64(len(c.Links)), 10)
	b = append(b, '|')
	b = strconv.AppendFloat(b, opt.Tol, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(opt.MaxIters), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(opt.Restarts), 10)
	b = append(b, ',')
	b = strconv.AppendFloat(b, opt.Lambda, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, opt.OrientWeight, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, opt.ToolAxis.X, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, opt.ToolAxis.Y, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, opt.ToolAxis.Z, 'g', -1, 64)
	return b
}

// appendMoveKey appends the quantized start configuration and target to a
// group prefix.
func appendMoveKey(b []byte, from []float64, target geom.Vec3) []byte {
	b = append(b, "|f"...)
	for _, v := range from {
		b = appendQuantized(b, v, JointQuantum)
	}
	b = append(b, "|t"...)
	b = appendQuantized(b, target.X, TargetQuantum)
	b = appendQuantized(b, target.Y, TargetQuantum)
	b = appendQuantized(b, target.Z, TargetQuantum)
	return b
}

func appendPlanKey(b []byte, c *Chain, from []float64, target geom.Vec3, opt IKOptions) []byte {
	b = appendGroupKey(b, c, opt)
	return appendMoveKey(b, from, target)
}

func appendQuantized(b []byte, v, quantum float64) []byte {
	b = append(b, ':')
	return strconv.AppendInt(b, int64(math.Round(v/quantum)), 10)
}
