// Package kin models six-axis robot arms kinematically: Denavit–Hartenberg
// chains, forward kinematics, numerically solved inverse kinematics, and
// joint-space trajectories. The Hein Lab production deck uses a UR3e; the
// paper's testbed uses a ViperX 300 and a Niryo Ned2; the Berlinguette Lab
// uses a UR5e and an N9 — profiles for all of them live in profiles.go.
//
// RABIT itself never needs joint torques or dynamics: its trajectory
// validation (the Extended Simulator) only needs the swept geometry of the
// arm, which a kinematic model provides exactly.
package kin

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// DHLink is one link of a standard Denavit–Hartenberg chain. Theta is the
// joint variable (all joints here are revolute); Offset is a fixed joint
// angle offset added to the commanded joint value.
type DHLink struct {
	A      float64 // link length (m)
	Alpha  float64 // link twist (rad)
	D      float64 // link offset (m)
	Offset float64 // joint variable offset (rad)
	// Radius is the collision radius of the capsule that models this
	// link's physical volume.
	Radius float64
	// MinAngle and MaxAngle bound the joint variable (rad).
	MinAngle, MaxAngle float64
}

// Chain is a serial kinematic chain of revolute joints with a fixed base
// pose in the world (or arm-local) frame.
type Chain struct {
	Name  string
	Base  geom.Pose
	Links []DHLink
	// MaxJointSpeed is the slowest joint's maximum angular velocity
	// (rad/s); it bounds how fast any joint-space move completes.
	MaxJointSpeed float64
	// Repeatability is the arm's positioning repeatability (m, 1σ). The
	// UR3e is ±0.03 mm; the educational testbed arms are far coarser,
	// which is the "device precision" row of the paper's Table I.
	Repeatability float64
}

// DOF returns the number of joints.
func (c *Chain) DOF() int { return len(c.Links) }

// ErrJointLimits is returned when a configuration violates joint limits.
var ErrJointLimits = errors.New("kin: joint configuration violates joint limits")

// ErrDOFMismatch is returned when a joint vector has the wrong length.
var ErrDOFMismatch = errors.New("kin: joint vector length does not match chain DOF")

// CheckJoints validates that q has the right arity and respects limits.
func (c *Chain) CheckJoints(q []float64) error {
	if len(q) != len(c.Links) {
		return fmt.Errorf("%w: got %d, want %d", ErrDOFMismatch, len(q), len(c.Links))
	}
	for i, l := range c.Links {
		if q[i] < l.MinAngle || q[i] > l.MaxAngle {
			return fmt.Errorf("%w: joint %d = %.3f rad outside [%.3f, %.3f]",
				ErrJointLimits, i, q[i], l.MinAngle, l.MaxAngle)
		}
	}
	return nil
}

// ClampJoints returns q with every joint clamped into its limits.
func (c *Chain) ClampJoints(q []float64) []float64 {
	out := make([]float64, len(q))
	for i := range q {
		v := q[i]
		if i < len(c.Links) {
			v = math.Max(c.Links[i].MinAngle, math.Min(c.Links[i].MaxAngle, v))
		}
		out[i] = v
	}
	return out
}

// clampJointsInPlace clamps q into joint limits without allocating — the
// IK iteration's form of ClampJoints.
func (c *Chain) clampJointsInPlace(q []float64) {
	for i := range q {
		if i < len(c.Links) {
			q[i] = math.Max(c.Links[i].MinAngle, math.Min(c.Links[i].MaxAngle, q[i]))
		}
	}
}

// linkTransform returns the DH transform for link l at joint value theta.
func linkTransform(l DHLink, theta float64) geom.Pose {
	th := theta + l.Offset
	ct, st := math.Cos(th), math.Sin(th)
	ca, sa := math.Cos(l.Alpha), math.Sin(l.Alpha)
	r := geom.Mat3{M: [3][3]float64{
		{ct, -st * ca, st * sa},
		{st, ct * ca, -ct * sa},
		{0, sa, ca},
	}}
	t := geom.V(l.A*ct, l.A*st, l.D)
	return geom.Pose{R: r, T: t}
}

// JointOrigins returns the origin of every joint frame, base first and
// end-effector last: DOF+1 points in the chain's base frame's parent
// coordinates (i.e. after applying Base).
func (c *Chain) JointOrigins(q []float64) ([]geom.Vec3, error) {
	return c.JointOriginsInto(q, nil)
}

// JointOriginsInto is JointOrigins writing into pts (grown as needed) —
// the allocation-free form for sampling loops.
func (c *Chain) JointOriginsInto(q []float64, pts []geom.Vec3) ([]geom.Vec3, error) {
	if len(q) != len(c.Links) {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDOFMismatch, len(q), len(c.Links))
	}
	if cap(pts) < len(c.Links)+1 {
		pts = make([]geom.Vec3, 0, len(c.Links)+1)
	}
	pts = pts[:0]
	cur := c.Base
	pts = append(pts, cur.T)
	for i, l := range c.Links {
		cur = cur.Compose(linkTransform(l, q[i]))
		pts = append(pts, cur.T)
	}
	return pts, nil
}

// Forward computes the end-effector pose for joint configuration q.
func (c *Chain) Forward(q []float64) (geom.Pose, error) {
	if len(q) != len(c.Links) {
		return geom.Pose{}, fmt.Errorf("%w: got %d, want %d", ErrDOFMismatch, len(q), len(c.Links))
	}
	cur := c.Base
	for i, l := range c.Links {
		cur = cur.Compose(linkTransform(l, q[i]))
	}
	return cur, nil
}

// EndEffector computes the end-effector position for q.
func (c *Chain) EndEffector(q []float64) (geom.Vec3, error) {
	p, err := c.Forward(q)
	if err != nil {
		return geom.Vec3{}, err
	}
	return p.T, nil
}

// LinkCapsules returns the collision volume of the arm at configuration q
// as one capsule per link whose length is non-negligible, plus a small
// end-effector capsule. Joints whose consecutive origins coincide (pure
// rotations) are skipped.
func (c *Chain) LinkCapsules(q []float64) ([]geom.Capsule, error) {
	pts, err := c.JointOrigins(q)
	if err != nil {
		return nil, err
	}
	return c.linkCapsulesFrom(pts, make([]geom.Capsule, 0, len(pts))), nil
}

// linkCapsulesFrom builds the link capsules for precomputed joint origins
// into caps (assumed empty with sufficient capacity reserved by callers
// that care about allocations).
func (c *Chain) linkCapsulesFrom(pts []geom.Vec3, caps []geom.Capsule) []geom.Capsule {
	for i := 0; i+1 < len(pts); i++ {
		r := c.Links[i].Radius
		if r <= 0 {
			r = 0.03
		}
		if pts[i].Dist(pts[i+1]) < 1e-6 {
			continue
		}
		caps = append(caps, geom.NewCapsule(pts[i], pts[i+1], r))
	}
	// End-effector / gripper stub around the last origin.
	last := pts[len(pts)-1]
	rr := c.Links[len(c.Links)-1].Radius
	if rr <= 0 {
		rr = 0.03
	}
	caps = append(caps, geom.NewCapsule(last, last, rr))
	return caps
}

// Reach returns the maximum reach of the chain from its base: the sum of
// all link lengths and offsets. A target farther than this from the base is
// trivially infeasible.
func (c *Chain) Reach() float64 {
	var r float64
	for _, l := range c.Links {
		r += math.Abs(l.A) + math.Abs(l.D)
	}
	return r
}
