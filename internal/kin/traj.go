package kin

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
)

// Trajectory is a joint-space move of a chain between two configurations,
// linearly interpolated in joint space — the standard "MoveJ" profile the
// UR3e and the testbed arms execute. The Extended Simulator validates
// trajectories by sampling them (the paper polls the robot arm's trajectory
// and compares against the 3D objects' coordinates).
type Trajectory struct {
	Chain *Chain
	From  []float64
	To    []float64
}

// PlanJointMove builds the trajectory from configuration from to the IK
// solution of target, validating limits.
func (c *Chain) PlanJointMove(from []float64, target geom.Vec3, opt IKOptions) (*Trajectory, error) {
	if err := c.CheckJoints(from); err != nil {
		return nil, fmt.Errorf("plan joint move: %w", err)
	}
	to, err := c.Solve(target, from, opt)
	if err != nil {
		return nil, fmt.Errorf("plan joint move to %v: %w", target, err)
	}
	return &Trajectory{Chain: c, From: from, To: to}, nil
}

// At returns the joint configuration at parameter t ∈ [0,1].
func (tr *Trajectory) At(t float64) []float64 {
	return tr.AtInto(t, make([]float64, len(tr.From)))
}

// AtInto writes the joint configuration at parameter t ∈ [0,1] into q,
// growing it if needed, and returns it — the allocation-free form of At
// for sampling loops.
func (tr *Trajectory) AtInto(t float64, q []float64) []float64 {
	t = math.Max(0, math.Min(1, t))
	if cap(q) < len(tr.From) {
		q = make([]float64, len(tr.From))
	}
	q = q[:len(tr.From)]
	for i := range q {
		q[i] = tr.From[i] + (tr.To[i]-tr.From[i])*t
	}
	return q
}

// JointSpan returns the largest absolute joint displacement of the move
// (rad), which with the chain's MaxJointSpeed determines its duration.
func (tr *Trajectory) JointSpan() float64 {
	var span float64
	for i := range tr.From {
		span = math.Max(span, math.Abs(tr.To[i]-tr.From[i]))
	}
	return span
}

// Duration returns how long the move takes at the chain's maximum joint
// speed. Zero-length moves still take a minimal settling time.
func (tr *Trajectory) Duration() time.Duration {
	speed := tr.Chain.MaxJointSpeed
	if speed <= 0 {
		speed = 1
	}
	secs := tr.JointSpan() / speed
	if secs < 0.05 {
		secs = 0.05
	}
	return time.Duration(secs * float64(time.Second))
}

// SampleCount returns the number of intermediate samples needed so that the
// end effector moves at most maxStep between consecutive samples; used by
// collision sweeps.
func (tr *Trajectory) SampleCount(maxStep float64) int {
	if maxStep <= 0 {
		maxStep = 0.01
	}
	a, errA := tr.Chain.EndEffector(tr.From)
	b, errB := tr.Chain.EndEffector(tr.To)
	if errA != nil || errB != nil {
		return 2
	}
	// Joint-space interpolation can sweep a longer arc than the chord;
	// use a conservative multiple of the chord length plus a floor
	// proportional to the joint span.
	est := 2*a.Dist(b) + 0.5*tr.JointSpan()
	n := int(math.Ceil(est/maxStep)) + 1
	if n < 2 {
		n = 2
	}
	if n > 2048 {
		n = 2048
	}
	return n
}

// Sweep is a reusable scratch workspace for sampling a trajectory's
// collision capsules without per-sample allocations. The zero value is
// ready to use; a Sweep must not be shared between goroutines.
type Sweep struct {
	q    []float64
	pts  []geom.Vec3
	caps []geom.Capsule
}

// CapsulesAt returns the chain's collision capsules at trajectory
// parameter t, reusing the workspace's buffers. The returned slice is
// only valid until the next CapsulesAt call; its last capsule is the
// end-effector stub, whose segment endpoints are the TCP position.
func (s *Sweep) CapsulesAt(tr *Trajectory, t float64) ([]geom.Capsule, error) {
	s.q = tr.AtInto(t, s.q)
	pts, err := tr.Chain.JointOriginsInto(s.q, s.pts)
	if err != nil {
		return nil, err
	}
	s.pts = pts
	if cap(s.caps) < len(pts) {
		s.caps = make([]geom.Capsule, 0, len(pts))
	}
	s.caps = tr.Chain.linkCapsulesFrom(pts, s.caps[:0])
	return s.caps, nil
}

// SweepCapsules invokes fn once per sample with the arm's collision
// capsules along the trajectory; fn returning false stops the sweep early.
// The parameter passed to fn is the trajectory parameter of that sample.
// The capsule slice is reused between samples: fn must not retain it.
func (tr *Trajectory) SweepCapsules(maxStep float64, fn func(t float64, caps []geom.Capsule) bool) error {
	var s Sweep
	n := tr.SampleCount(maxStep)
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		caps, err := s.CapsulesAt(tr, t)
		if err != nil {
			return fmt.Errorf("sweep capsules at t=%.3f: %w", t, err)
		}
		if !fn(t, caps) {
			return nil
		}
	}
	return nil
}

// SweptBounds returns the AABB enclosing every collision capsule at every
// sample the maxStep sweep visits — the broadphase bound: a solid whose
// box does not touch it cannot intersect any sampled capsule, and a plane
// whose negative half-space does not touch it cannot be penetrated.
func (tr *Trajectory) SweptBounds(maxStep float64, s *Sweep) (geom.AABB, error) {
	n := tr.SampleCount(maxStep)
	var bounds geom.AABB
	first := true
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		caps, err := s.CapsulesAt(tr, t)
		if err != nil {
			return geom.AABB{}, fmt.Errorf("swept bounds at t=%.3f: %w", t, err)
		}
		for _, c := range caps {
			if first {
				bounds = c.Bounds()
				first = false
				continue
			}
			bounds = bounds.Union(c.Bounds())
		}
	}
	return bounds, nil
}

// EndEffectorPath returns the sampled end-effector positions along the
// trajectory, for display and for the testbed's polling-based checks.
func (tr *Trajectory) EndEffectorPath(samples int) ([]geom.Vec3, error) {
	if samples < 2 {
		samples = 2
	}
	path := make([]geom.Vec3, 0, samples)
	q := make([]float64, len(tr.From))
	for i := 0; i < samples; i++ {
		t := float64(i) / float64(samples-1)
		p, err := tr.Chain.EndEffector(tr.AtInto(t, q))
		if err != nil {
			return nil, fmt.Errorf("end-effector path: %w", err)
		}
		path = append(path, p)
	}
	return path, nil
}
