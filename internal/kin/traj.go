package kin

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
)

// Trajectory is a joint-space move of a chain between two configurations,
// linearly interpolated in joint space — the standard "MoveJ" profile the
// UR3e and the testbed arms execute. The Extended Simulator validates
// trajectories by sampling them (the paper polls the robot arm's trajectory
// and compares against the 3D objects' coordinates).
type Trajectory struct {
	Chain *Chain
	From  []float64
	To    []float64
}

// PlanJointMove builds the trajectory from configuration from to the IK
// solution of target, validating limits.
func (c *Chain) PlanJointMove(from []float64, target geom.Vec3, opt IKOptions) (*Trajectory, error) {
	if err := c.CheckJoints(from); err != nil {
		return nil, fmt.Errorf("plan joint move: %w", err)
	}
	to, err := c.Solve(target, from, opt)
	if err != nil {
		return nil, fmt.Errorf("plan joint move to %v: %w", target, err)
	}
	return &Trajectory{Chain: c, From: from, To: to}, nil
}

// At returns the joint configuration at parameter t ∈ [0,1].
func (tr *Trajectory) At(t float64) []float64 {
	return tr.AtInto(t, make([]float64, len(tr.From)))
}

// AtInto writes the joint configuration at parameter t ∈ [0,1] into q,
// growing it if needed, and returns it — the allocation-free form of At
// for sampling loops.
func (tr *Trajectory) AtInto(t float64, q []float64) []float64 {
	t = math.Max(0, math.Min(1, t))
	if cap(q) < len(tr.From) {
		q = make([]float64, len(tr.From))
	}
	q = q[:len(tr.From)]
	for i := range q {
		q[i] = tr.From[i] + (tr.To[i]-tr.From[i])*t
	}
	return q
}

// JointSpan returns the largest absolute joint displacement of the move
// (rad), which with the chain's MaxJointSpeed determines its duration.
func (tr *Trajectory) JointSpan() float64 {
	var span float64
	for i := range tr.From {
		span = math.Max(span, math.Abs(tr.To[i]-tr.From[i]))
	}
	return span
}

// Duration returns how long the move takes at the chain's maximum joint
// speed. Zero-length moves still take a minimal settling time.
func (tr *Trajectory) Duration() time.Duration {
	speed := tr.Chain.MaxJointSpeed
	if speed <= 0 {
		speed = 1
	}
	secs := tr.JointSpan() / speed
	if secs < 0.05 {
		secs = 0.05
	}
	return time.Duration(secs * float64(time.Second))
}

// SampleCount returns the number of intermediate samples needed so that the
// end effector moves at most maxStep between consecutive samples; used by
// collision sweeps.
func (tr *Trajectory) SampleCount(maxStep float64) int {
	if maxStep <= 0 {
		maxStep = 0.01
	}
	a, errA := tr.Chain.EndEffector(tr.From)
	b, errB := tr.Chain.EndEffector(tr.To)
	if errA != nil || errB != nil {
		return 2
	}
	// Joint-space interpolation can sweep a longer arc than the chord;
	// use a conservative multiple of the chord length plus a floor
	// proportional to the joint span.
	est := 2*a.Dist(b) + 0.5*tr.JointSpan()
	n := int(math.Ceil(est/maxStep)) + 1
	if n < 2 {
		n = 2
	}
	if n > 2048 {
		n = 2048
	}
	return n
}

// Sweep is a reusable scratch workspace for sampling a trajectory's
// collision capsules without per-sample allocations. The zero value is
// ready to use; a Sweep must not be shared between goroutines.
type Sweep struct {
	q    []float64
	pts  []geom.Vec3
	caps []geom.Capsule
}

// CapsulesAt returns the chain's collision capsules at trajectory
// parameter t, reusing the workspace's buffers. The returned slice is
// only valid until the next CapsulesAt call; its last capsule is the
// end-effector stub, whose segment endpoints are the TCP position.
func (s *Sweep) CapsulesAt(tr *Trajectory, t float64) ([]geom.Capsule, error) {
	s.q = tr.AtInto(t, s.q)
	pts, err := tr.Chain.JointOriginsInto(s.q, s.pts)
	if err != nil {
		return nil, err
	}
	s.pts = pts
	if cap(s.caps) < len(pts) {
		s.caps = make([]geom.Capsule, 0, len(pts))
	}
	s.caps = tr.Chain.linkCapsulesFrom(pts, s.caps[:0])
	return s.caps, nil
}

// CapsulesAtInto appends the chain's collision capsules at trajectory
// parameter t to dst and returns it — the batch-fill variant of
// CapsulesAt for SoA layouts that concatenate every sample into one
// flat slice (see SweepBatch) instead of aliasing the workspace buffer.
func (s *Sweep) CapsulesAtInto(tr *Trajectory, t float64, dst []geom.Capsule) ([]geom.Capsule, error) {
	s.q = tr.AtInto(t, s.q)
	pts, err := tr.Chain.JointOriginsInto(s.q, s.pts)
	if err != nil {
		return dst, err
	}
	s.pts = pts
	return tr.Chain.linkCapsulesFrom(pts, dst), nil
}

// SweepBatch accumulates a whole trajectory's collision volume in SoA
// (structure-of-arrays) form: every sample's capsules concatenated into
// one flat slice, with per-sample offsets and AABBs, per-lane swept
// AABBs, and the whole-trajectory AABB — everything a batched validation
// pass needs, computed incrementally as samples are appended, with no
// allocation once the buffers have grown. A "lane" is one capsule
// position within a sample (link k, the gripper tip, the held object);
// a lane's swept bound encloses that capsule at every sample, which is
// a far tighter broadphase volume than the whole trajectory's box. Lane
// bounds are only meaningful when every sample appends the same capsule
// count (Uniform); a chain that drops a degenerate link mid-trajectory
// degrades consumers to the whole-trajectory bound.
//
// The zero value is ready after Reset; a SweepBatch must not be shared
// between goroutines.
type SweepBatch struct {
	// Caps is the flat capsule store. Producers append one sample's
	// capsules (e.g. via Sweep.CapsulesAtInto, plus any extras such as a
	// held object), then call EndSample to close it.
	Caps []geom.Capsule

	off     []int       // len = Samples()+1; sample i is Caps[off[i]:off[i+1]]
	sample  []geom.AABB // per-sample bounds
	lane    []geom.AABB // per-lane swept bounds (meaningful when uniform)
	bounds  geom.AABB   // whole-trajectory bounds
	uniform bool
	n       int
}

// Reset discards all samples, keeping the grown buffers.
func (b *SweepBatch) Reset() {
	b.Caps = b.Caps[:0]
	b.off = append(b.off[:0], 0)
	b.sample = b.sample[:0]
	b.lane = b.lane[:0]
	b.uniform = true
	b.n = 0
}

// EndSample closes the current sample — everything appended to Caps
// since the previous EndSample (or Reset) — folding its capsule bounds
// into the per-sample, per-lane, and whole-trajectory AABBs.
func (b *SweepBatch) EndSample() {
	start := b.off[len(b.off)-1]
	b.off = append(b.off, len(b.Caps))
	var sb geom.AABB
	for k, c := range b.Caps[start:] {
		cb := c.Bounds()
		if k == 0 {
			sb = cb
		} else {
			sb = sb.Union(cb)
		}
		if b.uniform {
			if b.n == 0 {
				b.lane = append(b.lane, cb)
			} else if k < len(b.lane) {
				b.lane[k] = b.lane[k].Union(cb)
			}
		}
	}
	if b.n == 0 {
		b.bounds = sb
	} else {
		b.bounds = b.bounds.Union(sb)
	}
	if b.n > 0 && len(b.Caps)-start != len(b.lane) {
		b.uniform = false
	}
	b.sample = append(b.sample, sb)
	b.n++
}

// Samples reports how many samples have been closed.
func (b *SweepBatch) Samples() int { return b.n }

// Sample returns sample i's capsules (a view into Caps).
func (b *SweepBatch) Sample(i int) []geom.Capsule { return b.Caps[b.off[i]:b.off[i+1]] }

// SampleBounds returns the AABB enclosing sample i's capsules.
func (b *SweepBatch) SampleBounds(i int) geom.AABB { return b.sample[i] }

// Bounds returns the AABB enclosing every capsule of every sample.
func (b *SweepBatch) Bounds() geom.AABB { return b.bounds }

// Uniform reports whether every sample appended the same capsule count,
// which is what makes per-lane bounds cover their lane at every sample.
func (b *SweepBatch) Uniform() bool { return b.uniform && b.n > 0 }

// Lanes reports the per-sample capsule count of a uniform batch.
func (b *SweepBatch) Lanes() int { return len(b.lane) }

// LaneBounds returns the AABB enclosing lane l's capsule at every
// sample. Only meaningful when Uniform reports true.
func (b *SweepBatch) LaneBounds(l int) geom.AABB { return b.lane[l] }

// SweepCapsules invokes fn once per sample with the arm's collision
// capsules along the trajectory; fn returning false stops the sweep early.
// The parameter passed to fn is the trajectory parameter of that sample.
// The capsule slice is reused between samples: fn must not retain it.
func (tr *Trajectory) SweepCapsules(maxStep float64, fn func(t float64, caps []geom.Capsule) bool) error {
	var s Sweep
	n := tr.SampleCount(maxStep)
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		caps, err := s.CapsulesAt(tr, t)
		if err != nil {
			return fmt.Errorf("sweep capsules at t=%.3f: %w", t, err)
		}
		if !fn(t, caps) {
			return nil
		}
	}
	return nil
}

// SweptBounds returns the AABB enclosing every collision capsule at every
// sample the maxStep sweep visits — the broadphase bound: a solid whose
// box does not touch it cannot intersect any sampled capsule, and a plane
// whose negative half-space does not touch it cannot be penetrated.
func (tr *Trajectory) SweptBounds(maxStep float64, s *Sweep) (geom.AABB, error) {
	n := tr.SampleCount(maxStep)
	var bounds geom.AABB
	first := true
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		caps, err := s.CapsulesAt(tr, t)
		if err != nil {
			return geom.AABB{}, fmt.Errorf("swept bounds at t=%.3f: %w", t, err)
		}
		for _, c := range caps {
			if first {
				bounds = c.Bounds()
				first = false
				continue
			}
			bounds = bounds.Union(c.Bounds())
		}
	}
	return bounds, nil
}

// EndEffectorPath returns the sampled end-effector positions along the
// trajectory, for display and for the testbed's polling-based checks.
func (tr *Trajectory) EndEffectorPath(samples int) ([]geom.Vec3, error) {
	if samples < 2 {
		samples = 2
	}
	path := make([]geom.Vec3, 0, samples)
	q := make([]float64, len(tr.From))
	for i := 0; i < samples; i++ {
		t := float64(i) / float64(samples-1)
		p, err := tr.Chain.EndEffector(tr.AtInto(t, q))
		if err != nil {
			return nil, fmt.Errorf("end-effector path: %w", err)
		}
		path = append(path, p)
	}
	return path, nil
}
