package kin

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func allModels() []Model {
	return []Model{ModelUR3e, ModelUR5e, ModelViperX300, ModelNed2, ModelN9}
}

func mustProfile(t *testing.T, m Model, base geom.Pose) *Profile {
	t.Helper()
	p, err := NewProfile(m, base)
	if err != nil {
		t.Fatalf("NewProfile(%v): %v", m, err)
	}
	return p
}

func TestModelString(t *testing.T) {
	tests := []struct {
		m    Model
		want string
	}{
		{ModelUR3e, "UR3e"},
		{ModelUR5e, "UR5e"},
		{ModelViperX300, "ViperX 300"},
		{ModelNed2, "Ned2"},
		{ModelN9, "N9"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.m), got, tt.want)
		}
	}
}

func TestParseModel(t *testing.T) {
	for _, s := range []string{"ur3e", "UR3e"} {
		m, err := ParseModel(s)
		if err != nil || m != ModelUR3e {
			t.Errorf("ParseModel(%q) = %v, %v", s, m, err)
		}
	}
	if _, err := ParseModel("kuka"); err == nil {
		t.Error("ParseModel of unknown model should fail")
	}
}

func TestForwardAtZeroIsFinite(t *testing.T) {
	for _, m := range allModels() {
		p := mustProfile(t, m, geom.IdentityPose())
		q := make([]float64, p.Chain.DOF())
		pose, err := p.Chain.Forward(q)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !pose.T.IsFinite() {
			t.Errorf("%v: non-finite FK at zero: %v", m, pose.T)
		}
		if pose.T.Norm() > p.Chain.Reach()+1e-9 {
			t.Errorf("%v: FK %v beyond reach %v", m, pose.T, p.Chain.Reach())
		}
	}
}

func TestForwardRespectsBaseMount(t *testing.T) {
	base := geom.PoseAt(geom.V(1, 2, 0.5))
	p := mustProfile(t, ModelUR3e, base)
	p0 := mustProfile(t, ModelUR3e, geom.IdentityPose())
	home, err := p.Chain.EndEffector(p.Home)
	if err != nil {
		t.Fatal(err)
	}
	home0, err := p0.Chain.EndEffector(p0.Home)
	if err != nil {
		t.Fatal(err)
	}
	if !home.Sub(home0).ApproxEqual(geom.V(1, 2, 0.5), 1e-9) {
		t.Errorf("base translation not reflected: %v vs %v", home, home0)
	}
}

func TestJointChecks(t *testing.T) {
	p := mustProfile(t, ModelNed2, geom.IdentityPose())
	if err := p.Chain.CheckJoints(p.Home); err != nil {
		t.Errorf("home pose should be within limits: %v", err)
	}
	bad := append([]float64(nil), p.Home...)
	bad[0] = 100
	if err := p.Chain.CheckJoints(bad); !errors.Is(err, ErrJointLimits) {
		t.Errorf("want ErrJointLimits, got %v", err)
	}
	if err := p.Chain.CheckJoints([]float64{0}); !errors.Is(err, ErrDOFMismatch) {
		t.Errorf("want ErrDOFMismatch, got %v", err)
	}
	clamped := p.Chain.ClampJoints(bad)
	if err := p.Chain.CheckJoints(clamped); err != nil {
		t.Errorf("clamped config should validate: %v", err)
	}
}

func TestJointOriginsChainConnectivity(t *testing.T) {
	p := mustProfile(t, ModelUR3e, geom.IdentityPose())
	pts, err := p.Chain.JointOrigins(p.Home)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != p.Chain.DOF()+1 {
		t.Fatalf("want %d origins, got %d", p.Chain.DOF()+1, len(pts))
	}
	// Consecutive origins can be at most one link apart.
	for i := 0; i+1 < len(pts); i++ {
		l := p.Chain.Links[i]
		maxLen := math.Abs(l.A) + math.Abs(l.D) + 1e-9
		if d := pts[i].Dist(pts[i+1]); d > maxLen {
			t.Errorf("link %d span %.4f exceeds geometric max %.4f", i, d, maxLen)
		}
	}
	// The last origin equals the FK end-effector.
	ee, err := p.Chain.EndEffector(p.Home)
	if err != nil {
		t.Fatal(err)
	}
	if !pts[len(pts)-1].ApproxEqual(ee, 1e-9) {
		t.Errorf("last origin %v != end effector %v", pts[len(pts)-1], ee)
	}
}

func TestLinkCapsulesCoverEndEffector(t *testing.T) {
	for _, m := range allModels() {
		p := mustProfile(t, m, geom.IdentityPose())
		caps, err := p.Chain.LinkCapsules(p.Home)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(caps) == 0 {
			t.Fatalf("%v: no capsules", m)
		}
		ee, err := p.Chain.EndEffector(p.Home)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, c := range caps {
			if c.ContainsPoint(ee) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%v: no capsule covers the end effector", m)
		}
		for i, c := range caps {
			if c.Radius <= 0 {
				t.Errorf("%v: capsule %d has non-positive radius", m, i)
			}
		}
	}
}

func TestIKReachesDeckTargets(t *testing.T) {
	for _, m := range allModels() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			p := mustProfile(t, m, geom.IdentityPose())
			reach := p.Chain.Reach()
			targets := []geom.Vec3{
				geom.V(reach*0.5, 0, reach*0.3),
				geom.V(reach*0.3, reach*0.3, reach*0.25),
				geom.V(-reach*0.4, reach*0.2, reach*0.35),
				geom.V(reach*0.2, -reach*0.4, reach*0.2),
			}
			opt := DefaultIKOptions()
			for _, tgt := range targets {
				q, err := p.Chain.Solve(tgt, p.Home, opt)
				if err != nil {
					t.Errorf("Solve(%v): %v", tgt, err)
					continue
				}
				got, err := p.Chain.EndEffector(q)
				if err != nil {
					t.Fatal(err)
				}
				if d := got.Dist(tgt); d > opt.Tol*1.01 {
					t.Errorf("Solve(%v) residual %.5f > tol", tgt, d)
				}
				if err := p.Chain.CheckJoints(q); err != nil {
					t.Errorf("IK solution violates limits: %v", err)
				}
			}
		})
	}
}

func TestIKRejectsInfeasibleTargets(t *testing.T) {
	p := mustProfile(t, ModelViperX300, geom.IdentityPose())
	tests := []struct {
		name string
		tgt  geom.Vec3
	}{
		{"beyond-reach", geom.V(5, 5, 5)},
		{"very-high", geom.V(0.1, 0.1, 3.0)}, // the paper's "very high, clearly infeasible" target
		{"nan", geom.Vec3{X: math.NaN()}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := p.Chain.Solve(tt.tgt, p.Home, DefaultIKOptions()); !errors.Is(err, ErrUnreachable) {
				t.Errorf("want ErrUnreachable, got %v", err)
			}
		})
	}
}

func TestIKDOFMismatch(t *testing.T) {
	p := mustProfile(t, ModelUR3e, geom.IdentityPose())
	if _, err := p.Chain.Solve(geom.V(0.2, 0, 0.2), []float64{0, 0}, DefaultIKOptions()); !errors.Is(err, ErrDOFMismatch) {
		t.Errorf("want ErrDOFMismatch, got %v", err)
	}
}

func TestTrajectoryInterpolation(t *testing.T) {
	p := mustProfile(t, ModelUR3e, geom.IdentityPose())
	tr, err := p.Chain.PlanJointMove(p.Home, geom.V(0.25, 0.1, 0.2), DefaultIKOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.At(0); !equalSlice(got, tr.From) {
		t.Errorf("At(0) = %v, want From", got)
	}
	if got := tr.At(1); !equalSlice(got, tr.To) {
		t.Errorf("At(1) = %v, want To", got)
	}
	// Clamped outside [0,1].
	if got := tr.At(-1); !equalSlice(got, tr.From) {
		t.Errorf("At(-1) not clamped")
	}
	if got := tr.At(2); !equalSlice(got, tr.To) {
		t.Errorf("At(2) not clamped")
	}
	if tr.Duration() <= 0 {
		t.Error("non-positive duration")
	}
	if tr.JointSpan() < 0 {
		t.Error("negative joint span")
	}
}

func TestTrajectorySweepVisitsEndpoints(t *testing.T) {
	p := mustProfile(t, ModelNed2, geom.IdentityPose())
	tr, err := p.Chain.PlanJointMove(p.Home, geom.V(0.2, 0.1, 0.15), DefaultIKOptions())
	if err != nil {
		t.Fatal(err)
	}
	var first, last float64 = -1, -1
	count := 0
	err = tr.SweepCapsules(0.02, func(tt float64, caps []geom.Capsule) bool {
		if first < 0 {
			first = tt
		}
		last = tt
		count++
		if len(caps) == 0 {
			t.Error("empty capsule set during sweep")
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 || last != 1 {
		t.Errorf("sweep t range [%v,%v], want [0,1]", first, last)
	}
	if count < 2 {
		t.Errorf("sweep visited only %d samples", count)
	}
}

func TestTrajectorySweepEarlyStop(t *testing.T) {
	p := mustProfile(t, ModelNed2, geom.IdentityPose())
	tr, err := p.Chain.PlanJointMove(p.Home, geom.V(0.2, 0.1, 0.15), DefaultIKOptions())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := tr.SweepCapsules(0.02, func(float64, []geom.Capsule) bool {
		count++
		return count < 3
	}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("early stop after %d samples, want 3", count)
	}
}

func TestEndEffectorPath(t *testing.T) {
	p := mustProfile(t, ModelUR3e, geom.IdentityPose())
	tr, err := p.Chain.PlanJointMove(p.Home, geom.V(0.25, 0.1, 0.2), DefaultIKOptions())
	if err != nil {
		t.Fatal(err)
	}
	path, err := tr.EndEffectorPath(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 20 {
		t.Fatalf("path length %d, want 20", len(path))
	}
	end, err := p.Chain.EndEffector(tr.To)
	if err != nil {
		t.Fatal(err)
	}
	if !path[len(path)-1].ApproxEqual(end, 1e-9) {
		t.Errorf("path end %v != FK end %v", path[len(path)-1], end)
	}
}

func TestSleepBoxEnclosesBase(t *testing.T) {
	for _, m := range allModels() {
		base := geom.PoseAt(geom.V(0.5, -0.2, 0))
		p := mustProfile(t, m, base)
		box := p.SleepBox()
		if !box.IsValid() {
			t.Errorf("%v: invalid sleep box", m)
		}
		if !box.ContainsPoint(base.T.Add(geom.V(0, 0, 0.01))) {
			t.Errorf("%v: sleep box %v does not cover base %v", m, box, base.T)
		}
	}
}

// TestFKProperty verifies a fundamental kinematic invariant on random
// configurations: the end effector never exceeds the chain's reach.
func TestFKProperty(t *testing.T) {
	p := mustProfile(t, ModelUR3e, geom.IdentityPose())
	n := p.Chain.DOF()
	if err := quick.Check(func(raw []float64) bool {
		q := make([]float64, n)
		for i := 0; i < n && i < len(raw); i++ {
			x := raw[i]
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			q[i] = math.Mod(x, math.Pi)
		}
		ee, err := p.Chain.EndEffector(q)
		if err != nil {
			return false
		}
		return ee.Norm() <= p.Chain.Reach()+1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}

func equalSlice(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIKPrefersToolDown: for comfortable deck targets the solver lands in
// a wrist-above-TCP posture — the pose real lab arms use, and the reason
// the forearm stays out of the racks.
func TestIKPrefersToolDown(t *testing.T) {
	p := mustProfile(t, ModelViperX300, geom.IdentityPose())
	targets := []geom.Vec3{
		geom.V(0.32, 0.22, 0.20), geom.V(0.25, 0.05, 0.25),
		geom.V(0.40, 0.10, 0.22), geom.V(0.30, -0.15, 0.24),
	}
	for _, tgt := range targets {
		q, err := p.Chain.Solve(tgt, p.Home, DefaultIKOptions())
		if err != nil {
			t.Fatalf("Solve(%v): %v", tgt, err)
		}
		pts, err := p.Chain.JointOrigins(q)
		if err != nil {
			t.Fatal(err)
		}
		wrist := pts[len(pts)-2]
		tcp := pts[len(pts)-1]
		if wrist.Z <= tcp.Z {
			t.Errorf("target %v: wrist %v below TCP %v (tool not pointing down)", tgt, wrist, tcp)
		}
	}
}

// TestIKOrientationFallbackWarmStart: targets no tool-down posture can
// reach (behind the base, below the deck plane) drop into Solve's
// position-only fallback where even the bare descent from q0 misses.
// These must resolve through the single descent warm-started from the
// weighted schedule's best near-miss instead of a second full restart
// schedule — and still meet the position contract.
func TestIKOrientationFallbackWarmStart(t *testing.T) {
	p := mustProfile(t, ModelViperX300, geom.IdentityPose())
	reach := p.Chain.Reach()
	opt := DefaultIKOptions()
	targets := []geom.Vec3{
		geom.V(-reach*0.7, -reach*0.3, -reach*0.15), // behind base, below deck
		geom.V(-reach*0.7, 0, -reach*0.15),          // straight back, below deck
	}
	for _, tgt := range targets {
		before := ikFallbackWarmHits.Load()
		q, err := p.Chain.Solve(tgt, p.Home, opt)
		if err != nil {
			t.Fatalf("Solve(%v): fallback regression: %v", tgt, err)
		}
		if ikFallbackWarmHits.Load() != before+1 {
			t.Errorf("Solve(%v) did not take the warm-started fallback", tgt)
		}
		ee, err := p.Chain.EndEffector(q)
		if err != nil {
			t.Fatal(err)
		}
		if d := ee.Dist(tgt); d > opt.Tol*1.01 {
			t.Errorf("Solve(%v) residual %.5f > tol", tgt, d)
		}
		if err := p.Chain.CheckJoints(q); err != nil {
			t.Errorf("fallback solution violates limits: %v", err)
		}
		// Determinism: the fallback path must return the same branch
		// every time (the plan cache depends on it).
		q2, err := p.Chain.Solve(tgt, p.Home, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !equalSlice(q, q2) {
			t.Errorf("Solve(%v) not deterministic: %v vs %v", tgt, q, q2)
		}
	}
	// A target the fallback also cannot reach still reports unreachable.
	if _, err := p.Chain.Solve(geom.V(0.1, 0.1, 3.0), p.Home, opt); err == nil {
		t.Error("infeasible target solved via fallback")
	}
}

func TestScratchAPIsMatchAllocatingForms(t *testing.T) {
	p := mustProfile(t, ModelViperX300, geom.IdentityPose())
	tr, err := p.Chain.PlanJointMove(p.Home, geom.V(0.3, 0.15, 0.2), DefaultIKOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sweep Sweep
	var q []float64
	for _, tt := range []float64{0, 0.17, 0.5, 0.83, 1} {
		q = tr.AtInto(tt, q)
		if !equalSlice(q, tr.At(tt)) {
			t.Fatalf("AtInto(%v) = %v, At = %v", tt, q, tr.At(tt))
		}
		want, err := p.Chain.LinkCapsules(tr.At(tt))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sweep.CapsulesAt(tr, tt)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("CapsulesAt(%v): %d capsules, want %d", tt, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("CapsulesAt(%v)[%d] = %+v, want %+v", tt, i, got[i], want[i])
			}
		}
		pts, err := p.Chain.JointOriginsInto(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantPts, err := p.Chain.JointOrigins(tr.At(tt))
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != len(wantPts) {
			t.Fatalf("JointOriginsInto: %d points, want %d", len(pts), len(wantPts))
		}
		// The last capsule is the end-effector stub anchored at the TCP.
		ee, err := p.Chain.EndEffector(q)
		if err != nil {
			t.Fatal(err)
		}
		if got[len(got)-1].Seg.B.Dist(ee) > 1e-12 {
			t.Errorf("stub capsule endpoint %v, want TCP %v", got[len(got)-1].Seg.B, ee)
		}
	}
	// DOF mismatch still surfaces through the scratch forms.
	if _, err := p.Chain.JointOriginsInto([]float64{0}, nil); !errors.Is(err, ErrDOFMismatch) {
		t.Errorf("want ErrDOFMismatch, got %v", err)
	}
}

func TestSweptBoundsEnclosesEverySample(t *testing.T) {
	p := mustProfile(t, ModelNed2, geom.IdentityPose())
	tr, err := p.Chain.PlanJointMove(p.Home, geom.V(0.2, 0.1, 0.15), DefaultIKOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sweep Sweep
	bounds, err := tr.SweptBounds(0.02, &sweep)
	if err != nil {
		t.Fatal(err)
	}
	if !bounds.IsValid() {
		t.Fatalf("invalid swept bounds %v", bounds)
	}
	if err := tr.SweepCapsules(0.02, func(tt float64, caps []geom.Capsule) bool {
		for _, c := range caps {
			cb := c.Bounds()
			if !bounds.ContainsPoint(cb.Min) || !bounds.ContainsPoint(cb.Max) {
				t.Errorf("capsule bounds %v at t=%v escape swept bounds %v", cb, tt, bounds)
				return false
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSweepCapsulesAllocs(b *testing.B) {
	p, err := NewProfile(ModelViperX300, geom.IdentityPose())
	if err != nil {
		b.Fatal(err)
	}
	tr, err := p.Chain.PlanJointMove(p.Home, geom.V(0.3, 0.15, 0.2), DefaultIKOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.SweepCapsules(0.02, func(float64, []geom.Capsule) bool { return true }); err != nil {
			b.Fatal(err)
		}
	}
}
