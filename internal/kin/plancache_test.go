package kin

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestPlanCacheHitReturnsColdSolution(t *testing.T) {
	p := mustProfile(t, ModelViperX300, geom.IdentityPose())
	pc := NewPlanCache(8)
	tgt := geom.V(0.32, 0.22, 0.2)
	opt := DefaultIKOptions()

	cold, err := p.Chain.PlanJointMove(p.Home, tgt, opt)
	if err != nil {
		t.Fatal(err)
	}
	first, err := pc.Plan(p.Chain, p.Home, tgt, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSlice(first.To, cold.To) {
		t.Errorf("cache miss solution %v differs from cold solve %v", first.To, cold.To)
	}
	second, err := pc.Plan(p.Chain, p.Home, tgt, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSlice(second.To, cold.To) {
		t.Errorf("cache hit solution %v differs from cold solve %v", second.To, cold.To)
	}
	st := pc.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestPlanCacheHitSharesNoStateWithCache(t *testing.T) {
	p := mustProfile(t, ModelViperX300, geom.IdentityPose())
	pc := NewPlanCache(8)
	tgt := geom.V(0.32, 0.22, 0.2)
	opt := DefaultIKOptions()

	first, err := pc.Plan(p.Chain, p.Home, tgt, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), first.To...)
	for i := range first.To {
		first.To[i] = math.NaN() // caller scribbles on its trajectory
	}
	second, err := pc.Plan(p.Chain, p.Home, tgt, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSlice(second.To, want) {
		t.Errorf("cached entry corrupted by caller mutation: %v, want %v", second.To, want)
	}
}

func TestPlanCacheKeySeparatesInputs(t *testing.T) {
	p := mustProfile(t, ModelViperX300, geom.IdentityPose())
	moved := mustProfile(t, ModelViperX300, geom.PoseAt(geom.V(0.8, 0, 0)))
	pc := NewPlanCache(32)
	opt := DefaultIKOptions()
	bare := opt
	bare.OrientWeight = 0

	if _, err := pc.Plan(p.Chain, p.Home, geom.V(0.32, 0.22, 0.2), opt); err != nil {
		t.Fatal(err)
	}
	// Different target, different options, different start, different
	// chain placement: all misses.
	others := []struct {
		name string
		run  func() error
	}{
		{"target", func() error {
			_, err := pc.Plan(p.Chain, p.Home, geom.V(0.32, 0.22, 0.25), opt)
			return err
		}},
		{"options", func() error {
			_, err := pc.Plan(p.Chain, p.Home, geom.V(0.32, 0.22, 0.2), bare)
			return err
		}},
		{"start", func() error {
			_, err := pc.Plan(p.Chain, p.Sleep, geom.V(0.32, 0.22, 0.2), opt)
			return err
		}},
		{"base", func() error {
			_, err := pc.Plan(moved.Chain, moved.Home, geom.V(0.32+0.8, 0.22, 0.2), opt)
			return err
		}},
	}
	for _, o := range others {
		before := pc.Stats()
		if err := o.run(); err != nil {
			t.Fatalf("%s: %v", o.name, err)
		}
		after := pc.Stats()
		if after.Misses != before.Misses+1 {
			t.Errorf("%s: expected a miss, stats %+v -> %+v", o.name, before, after)
		}
		if after.Hits != before.Hits {
			t.Errorf("%s: unexpected hit, stats %+v -> %+v", o.name, before, after)
		}
	}
}

func TestPlanCacheQuantizationAbsorbsNoise(t *testing.T) {
	p := mustProfile(t, ModelViperX300, geom.IdentityPose())
	pc := NewPlanCache(8)
	opt := DefaultIKOptions()
	tgt := geom.V(0.32, 0.22, 0.2)
	if _, err := pc.Plan(p.Chain, p.Home, tgt, opt); err != nil {
		t.Fatal(err)
	}
	// Sub-quantum jitter on both the start configuration and the target
	// maps to the same key.
	from := append([]float64(nil), p.Home...)
	for i := range from {
		from[i] += JointQuantum / 8
	}
	jittered := tgt.Add(geom.V(TargetQuantum/8, -TargetQuantum/8, TargetQuantum/8))
	if _, err := pc.Plan(p.Chain, from, jittered, opt); err != nil {
		t.Fatal(err)
	}
	if st := pc.Stats(); st.Hits != 1 {
		t.Errorf("sub-quantum jitter missed the cache: %+v", st)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	p := mustProfile(t, ModelViperX300, geom.IdentityPose())
	pc := NewPlanCache(2)
	pc.SetWarmStart(false)
	opt := DefaultIKOptions()
	targets := []geom.Vec3{
		geom.V(0.32, 0.22, 0.2),
		geom.V(0.30, 0.10, 0.22),
		geom.V(0.25, -0.15, 0.24),
	}
	for _, tgt := range targets {
		if _, err := pc.Plan(p.Chain, p.Home, tgt, opt); err != nil {
			t.Fatal(err)
		}
	}
	if pc.Len() != 2 {
		t.Errorf("Len = %d, want capacity 2", pc.Len())
	}
	st := pc.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	// The oldest entry (targets[0]) is gone; the newest two still hit.
	if _, err := pc.Plan(p.Chain, p.Home, targets[2], opt); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Plan(p.Chain, p.Home, targets[1], opt); err != nil {
		t.Fatal(err)
	}
	if st := pc.Stats(); st.Hits != 2 {
		t.Errorf("hits = %d, want 2 (LRU retained wrong entries)", st.Hits)
	}
	if _, err := pc.Plan(p.Chain, p.Home, targets[0], opt); err != nil {
		t.Fatal(err)
	}
	if st := pc.Stats(); st.Misses != 4 {
		t.Errorf("misses = %d, want 4 (evicted entry should re-solve)", st.Misses)
	}
}

func TestPlanCacheWarmStartAdjacentTarget(t *testing.T) {
	p := mustProfile(t, ModelViperX300, geom.IdentityPose())
	pc := NewPlanCache(8)
	opt := DefaultIKOptions()
	anchor := geom.V(0.32, 0.22, 0.2)
	if _, err := pc.Plan(p.Chain, p.Home, anchor, opt); err != nil {
		t.Fatal(err)
	}
	// A target a few centimetres away warm-starts from the anchor's
	// solution and still meets the full solve contract.
	near := anchor.Add(geom.V(0.02, -0.01, 0.03))
	tr, err := pc.Plan(p.Chain, p.Home, near, opt)
	if err != nil {
		t.Fatal(err)
	}
	st := pc.Stats()
	if st.WarmStarts != 1 {
		t.Errorf("warm starts = %d, want 1 (stats %+v)", st.WarmStarts, st)
	}
	ee, err := p.Chain.EndEffector(tr.To)
	if err != nil {
		t.Fatal(err)
	}
	if d := ee.Dist(near); d > opt.Tol*1.01 {
		t.Errorf("warm-started solution residual %.5f > tol", d)
	}
	if err := p.Chain.CheckJoints(tr.To); err != nil {
		t.Errorf("warm-started solution violates limits: %v", err)
	}
	// A far target must not be seeded from the anchor's neighborhood…
	// and either way the solution must satisfy the contract.
	far := geom.V(-0.30, 0.15, 0.25)
	if _, err := pc.Plan(p.Chain, p.Home, far, opt); err != nil {
		t.Fatal(err)
	}
	if st := pc.Stats(); st.WarmStarts != 1 {
		t.Errorf("far target warm-started: %+v", st)
	}
}

func TestPlanCacheErrorsNotCached(t *testing.T) {
	p := mustProfile(t, ModelViperX300, geom.IdentityPose())
	pc := NewPlanCache(8)
	opt := DefaultIKOptions()
	bad := geom.V(5, 5, 5)
	for i := 0; i < 2; i++ {
		if _, err := pc.Plan(p.Chain, p.Home, bad, opt); err == nil {
			t.Fatal("unreachable target planned successfully")
		}
	}
	if pc.Len() != 0 {
		t.Errorf("error cached: Len = %d", pc.Len())
	}
	if st := pc.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Errorf("stats %+v, want 2 misses 0 hits", st)
	}
}

func BenchmarkPlanCacheHit(b *testing.B) {
	p, err := NewProfile(ModelViperX300, geom.IdentityPose())
	if err != nil {
		b.Fatal(err)
	}
	pc := NewPlanCache(64)
	tgt := geom.V(0.32, 0.22, 0.2)
	opt := DefaultIKOptions()
	if _, err := pc.Plan(p.Chain, p.Home, tgt, opt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pc.Plan(p.Chain, p.Home, tgt, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanColdSolve(b *testing.B) {
	p, err := NewProfile(ModelViperX300, geom.IdentityPose())
	if err != nil {
		b.Fatal(err)
	}
	tgt := geom.V(0.32, 0.22, 0.2)
	opt := DefaultIKOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Chain.PlanJointMove(p.Home, tgt, opt); err != nil {
			b.Fatal(err)
		}
	}
}
