package device

import (
	"errors"
	"fmt"

	"repro/internal/action"
	"repro/internal/geom"
	"repro/internal/kin"
	"repro/internal/state"
	"repro/internal/world"
)

// VendorBehavior captures how an arm's controller reacts to a target it
// cannot plan a trajectory to — the firmware difference at the heart of
// the paper's category-4 findings.
type VendorBehavior int

// Vendor behaviours observed in the paper.
const (
	// BehaviorAccurate (UR3e/UR5e/N9): the controller raises an error the
	// script sees.
	BehaviorAccurate VendorBehavior = iota + 1
	// BehaviorSilentSkip (ViperX): the controller quietly ignores the
	// command and reports success — "silently skipping a command can be
	// potentially unsafe".
	BehaviorSilentSkip
	// BehaviorHaltOnError (Ned2): the controller throws an exception and
	// halts immediately; subsequent commands fail until a reset.
	BehaviorHaltOnError
)

// BehaviorForModel returns the vendor behaviour of an arm model.
func BehaviorForModel(m kin.Model) VendorBehavior {
	switch m {
	case kin.ModelViperX300:
		return BehaviorSilentSkip
	case kin.ModelNed2:
		return BehaviorHaltOnError
	default:
		return BehaviorAccurate
	}
}

// LocationResolver resolves a named location to coordinates in a given
// arm's frame (the config.Lab implements this).
type LocationResolver interface {
	LocationPos(armID, loc string) (geom.Vec3, bool)
}

// ArmDriver drives one robot arm.
type ArmDriver struct {
	id       string
	base     geom.Vec3 // arm frame origin in the deck frame
	profile  *kin.Profile
	behavior VendorBehavior
	resolver LocationResolver
	halted   bool
	fault    Fault
}

var _ Driver = (*ArmDriver)(nil)

// NewArmDriver builds a driver for an arm already mounted in the world.
func NewArmDriver(id string, base geom.Vec3, profile *kin.Profile, behavior VendorBehavior, resolver LocationResolver) *ArmDriver {
	return &ArmDriver{
		id: id, base: base, profile: profile,
		behavior: behavior, resolver: resolver,
	}
}

// ID implements Driver.
func (d *ArmDriver) ID() string { return d.id }

// InjectFault implements Driver.
func (d *ArmDriver) InjectFault(f Fault) { d.fault = f }

// Halted reports whether the controller refuses motion.
func (d *ArmDriver) Halted() bool { return d.halted }

// Reset clears a halt.
func (d *ArmDriver) Reset() { d.halted = false }

// DeckTarget converts a command's target into the deck frame.
func (d *ArmDriver) DeckTarget(cmd action.Command) (geom.Vec3, error) {
	if cmd.TargetName != "" {
		p, ok := d.resolver.LocationPos(d.id, cmd.TargetName)
		if !ok {
			return geom.Vec3{}, fmt.Errorf("device: arm %s: unknown location %q", d.id, cmd.TargetName)
		}
		return p.Add(d.base), nil
	}
	return cmd.Target.Add(d.base), nil
}

// Execute implements Driver.
func (d *ArmDriver) Execute(w *world.World, cmd action.Command) error {
	if d.halted && cmd.Action.IsRobotMotion() {
		return ErrHalted
	}
	switch cmd.Action {
	case action.MoveRobot, action.MoveRobotInside:
		target, err := d.DeckTarget(cmd)
		if err != nil {
			return err
		}
		opts := world.MoveOptions{Roll: cmd.Roll}
		if cmd.Object != "" {
			opts.IgnoreObjects = []string{cmd.Object}
		}
		err = w.MoveArmTo(d.id, target, opts)
		if err != nil && errors.Is(err, kin.ErrUnreachable) {
			switch d.behavior {
			case BehaviorSilentSkip:
				// The ViperX behaviour: report success, do nothing.
				return nil
			case BehaviorHaltOnError:
				d.halted = true
				return fmt.Errorf("device: arm %s halted: %w", d.id, err)
			default:
				return err
			}
		}
		return err

	case action.MoveHome:
		return w.MoveArmJoints(d.id, d.profile.Home, false)

	case action.MoveSleep:
		return w.MoveArmJoints(d.id, d.profile.Sleep, true)

	case action.PickObject, action.CloseGripper:
		return w.CloseGripper(d.id)

	case action.PlaceObject, action.OpenGripper:
		return w.OpenGripper(d.id)

	case action.ReadStatus:
		return nil

	default:
		return unknownAction(d.id, cmd.Action)
	}
}

// ReadState implements Driver: arms report whether they are folded in the
// sleep pose and which named location (if any) their TCP sits at. They do
// NOT report whether the gripper holds anything — there is no pressure
// sensor, the gap the paper's Bug C exploits.
func (d *ArmDriver) ReadState(w *world.World, into state.Snapshot) {
	asleep, ok := w.ArmAsleep(d.id)
	if !ok {
		return
	}
	into.Set(state.ArmAsleep(d.id), state.Bool(asleep))
	if loc, err := w.NamedLocationOfArm(d.id); err == nil {
		into.Set(state.ArmAt(d.id), state.Str(loc))
	}
}
