package device

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/action"
	"repro/internal/geom"
	"repro/internal/kin"
	"repro/internal/state"
	"repro/internal/world"
)

// resolverFunc adapts a function to LocationResolver.
type resolverFunc func(armID, loc string) (geom.Vec3, bool)

func (f resolverFunc) LocationPos(armID, loc string) (geom.Vec3, bool) { return f(armID, loc) }

// deckWithArm builds a bare world with one arm of the given model.
func deckWithArm(t *testing.T, model kin.Model) (*world.World, *ArmDriver) {
	t.Helper()
	w := world.New(1)
	p, err := kin.NewProfile(model, geom.IdentityPose())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddArm("arm", p); err != nil {
		t.Fatal(err)
	}
	resolver := resolverFunc(func(armID, loc string) (geom.Vec3, bool) {
		if loc == "bench" {
			return geom.V(0.30, 0.10, 0.25), true
		}
		return geom.Vec3{}, false
	})
	d := NewArmDriver("arm", geom.Vec3{}, p, BehaviorForModel(model), resolver)
	return w, d
}

func TestBehaviorForModel(t *testing.T) {
	tests := []struct {
		model kin.Model
		want  VendorBehavior
	}{
		{kin.ModelUR3e, BehaviorAccurate},
		{kin.ModelUR5e, BehaviorAccurate},
		{kin.ModelN9, BehaviorAccurate},
		{kin.ModelViperX300, BehaviorSilentSkip},
		{kin.ModelNed2, BehaviorHaltOnError},
	}
	for _, tt := range tests {
		if got := BehaviorForModel(tt.model); got != tt.want {
			t.Errorf("%v: behavior %v, want %v", tt.model, got, tt.want)
		}
	}
}

func TestArmDriverMoveAndStatus(t *testing.T) {
	w, d := deckWithArm(t, kin.ModelUR3e)
	err := d.Execute(w, action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.30, 0.10, 0.25)})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := w.Arm("arm")
	tcp, _ := a.TCP()
	if tcp.Dist(geom.V(0.30, 0.10, 0.25)) > 0.01 {
		t.Errorf("arm did not reach the target: %v", tcp)
	}
	s := state.Snapshot{}
	d.ReadState(w, s)
	if s.GetBool(state.ArmAsleep("arm")) {
		t.Error("arm should not report asleep")
	}
	if _, reported := s.Get(state.Holding("arm")); reported {
		t.Error("holding must never be observable (no pressure sensor)")
	}
}

func TestArmDriverNamedLocation(t *testing.T) {
	w, d := deckWithArm(t, kin.ModelUR3e)
	if err := w.AddLocation(world.Location{Name: "bench", Pos: geom.V(0.30, 0.10, 0.25)}); err != nil {
		t.Fatal(err)
	}
	err := d.Execute(w, action.Command{Device: "arm", Action: action.MoveRobot, TargetName: "bench"})
	if err != nil {
		t.Fatal(err)
	}
	s := state.Snapshot{}
	d.ReadState(w, s)
	if got := s.GetString(state.ArmAt("arm")); got != "bench" {
		t.Errorf("reported location %q, want bench", got)
	}
	// Unknown named location is a driver error.
	err = d.Execute(w, action.Command{Device: "arm", Action: action.MoveRobot, TargetName: "ghost"})
	if err == nil {
		t.Fatal("unknown location accepted")
	}
}

func TestViperXSilentlySkipsInfeasibleTargets(t *testing.T) {
	w, d := deckWithArm(t, kin.ModelViperX300)
	a, _ := w.Arm("arm")
	before, _ := a.TCP()
	// The paper: "it failed to compute the trajectory and silently
	// ignored the command".
	err := d.Execute(w, action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.1, 0.1, 3)})
	if err != nil {
		t.Fatalf("the ViperX must report success on an infeasible target, got %v", err)
	}
	after, _ := a.TCP()
	if before.Dist(after) > 1e-9 {
		t.Error("the arm moved despite the silent skip")
	}
}

func TestNed2HaltsOnInfeasibleTargets(t *testing.T) {
	w, d := deckWithArm(t, kin.ModelNed2)
	// The paper: "it throws an exception and halts immediately".
	err := d.Execute(w, action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.1, 0.1, 3)})
	if err == nil {
		t.Fatal("the Ned2 must raise on an infeasible target")
	}
	if !d.Halted() {
		t.Fatal("the Ned2 must latch halted")
	}
	err = d.Execute(w, action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.2, 0, 0.2)})
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("halted arm accepted a move: %v", err)
	}
	d.Reset()
	if err := d.Execute(w, action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.2, 0, 0.2)}); err != nil {
		t.Fatalf("reset did not clear the halt: %v", err)
	}
}

func TestUR3eRaisesOnInfeasibleTargets(t *testing.T) {
	w, d := deckWithArm(t, kin.ModelUR3e)
	err := d.Execute(w, action.Command{Device: "arm", Action: action.MoveRobot, Target: geom.V(5, 5, 5)})
	if err == nil {
		t.Fatal("the UR3e must raise on an infeasible target")
	}
	if d.Halted() {
		t.Error("the UR3e does not halt; the script sees the error and decides")
	}
}

func TestArmDriverHomeSleepGripper(t *testing.T) {
	w, d := deckWithArm(t, kin.ModelUR3e)
	if err := d.Execute(w, action.Command{Device: "arm", Action: action.MoveSleep}); err != nil {
		t.Fatal(err)
	}
	s := state.Snapshot{}
	d.ReadState(w, s)
	if !s.GetBool(state.ArmAsleep("arm")) {
		t.Error("sleep not reported")
	}
	if err := d.Execute(w, action.Command{Device: "arm", Action: action.MoveHome}); err != nil {
		t.Fatal(err)
	}
	if err := d.Execute(w, action.Command{Device: "arm", Action: action.CloseGripper}); err != nil {
		t.Fatal(err)
	}
	if err := d.Execute(w, action.Command{Device: "arm", Action: action.OpenGripper}); err != nil {
		t.Fatal(err)
	}
	if err := d.Execute(w, action.Command{Device: "arm", Action: action.DoseSolid}); err == nil {
		t.Fatal("arm accepted a dosing command")
	}
}

// fixtureDeck builds a world with one dosing fixture.
func fixtureDeck(t *testing.T) (*world.World, *FixtureDriver) {
	t.Helper()
	w := world.New(1)
	f := &world.Fixture{
		ID: "dd", Kind: world.KindDosing, Expensive: true,
		Body:         geom.Box(geom.V(0, 0, 0), geom.V(0.2, 0.2, 0.3)),
		Interior:     geom.Box(geom.V(0.03, 0.03, 0.03), geom.V(0.17, 0.17, 0.27)),
		Door:         world.DoorYNeg,
		MaxSafeValue: 340,
	}
	if err := w.AddFixture(f); err != nil {
		t.Fatal(err)
	}
	return w, NewFixtureDriver("dd", true, 400)
}

func TestFixtureDriverDoorAndStatus(t *testing.T) {
	w, d := fixtureDeck(t)
	if err := d.Execute(w, action.Command{Device: "dd", Action: action.OpenDoor}); err != nil {
		t.Fatal(err)
	}
	s := state.Snapshot{}
	d.ReadState(w, s)
	if !s.GetBool(state.DoorStatus("dd")) {
		t.Error("door status not reported open")
	}
	if err := d.Execute(w, action.Command{Device: "dd", Action: action.CloseDoor}); err != nil {
		t.Fatal(err)
	}
	s = state.Snapshot{}
	d.ReadState(w, s)
	if s.GetBool(state.DoorStatus("dd")) {
		t.Error("door status not reported closed")
	}
}

func TestFixtureDriverDoorStuckFault(t *testing.T) {
	w, d := fixtureDeck(t)
	d.InjectFault(FaultDoorStuck)
	if err := d.Execute(w, action.Command{Device: "dd", Action: action.OpenDoor}); err != nil {
		t.Fatal("a stuck door still acknowledges the command")
	}
	s := state.Snapshot{}
	d.ReadState(w, s)
	if s.GetBool(state.DoorStatus("dd")) {
		t.Error("the stuck door physically moved")
	}
	d.InjectFault(FaultNone)
	if err := d.Execute(w, action.Command{Device: "dd", Action: action.OpenDoor}); err != nil {
		t.Fatal(err)
	}
	s = state.Snapshot{}
	d.ReadState(w, s)
	if !s.GetBool(state.DoorStatus("dd")) {
		t.Error("cleared fault should restore the door")
	}
}

func TestFixtureDriverFirmwareLimit(t *testing.T) {
	w, d := fixtureDeck(t)
	err := d.Execute(w, action.Command{Device: "dd", Action: action.SetActionValue, Value: 500})
	if err == nil || !strings.Contains(err.Error(), "firmware") {
		t.Fatalf("firmware limit not enforced: %v", err)
	}
	if err := d.Execute(w, action.Command{Device: "dd", Action: action.SetActionValue, Value: 300}); err != nil {
		t.Fatal(err)
	}
	f, _ := w.Fixture("dd")
	if f.ActionValue != 300 {
		t.Errorf("setpoint = %v", f.ActionValue)
	}
}

func TestFixtureDriverRunAndDose(t *testing.T) {
	w, d := fixtureDeck(t)
	if err := d.Execute(w, action.Command{Device: "dd", Action: action.StartAction}); err != nil {
		t.Fatal(err)
	}
	f, _ := w.Fixture("dd")
	if !f.Running {
		t.Error("not running")
	}
	if err := d.Execute(w, action.Command{Device: "dd", Action: action.DoseSolid, Value: 5}); err != nil {
		t.Fatal(err)
	}
	if err := d.Execute(w, action.Command{Device: "dd", Action: action.StopAction}); err != nil {
		t.Fatal(err)
	}
	if f.Running {
		t.Error("still running")
	}
	// A doorless driver refuses door commands.
	noDoor := NewFixtureDriver("dd", false, 0)
	if err := noDoor.Execute(w, action.Command{Device: "dd", Action: action.OpenDoor}); err == nil {
		t.Fatal("doorless device accepted a door command")
	}
}

func TestContainerDriver(t *testing.T) {
	w := world.New(1)
	if err := w.AddLocation(world.Location{Name: "slot", Pos: geom.V(0.1, 0.1, 0.2)}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddObject(&world.Object{ID: "vial", HeightM: 0.07, RadiusM: 0.012, At: "slot"}); err != nil {
		t.Fatal(err)
	}
	d := NewContainerDriver("vial")
	if err := d.Execute(w, action.Command{Device: "vial", Action: action.CapContainer, Object: "vial"}); err != nil {
		t.Fatal(err)
	}
	o, _ := w.Object("vial")
	if !o.Capped {
		t.Error("cap not applied")
	}
	if err := d.Execute(w, action.Command{Device: "vial", Action: action.DecapContainer, Object: "vial"}); err != nil {
		t.Fatal(err)
	}
	if o.Capped {
		t.Error("cap not removed")
	}
	// Containers report nothing.
	s := state.Snapshot{}
	d.ReadState(w, s)
	if len(s) != 0 {
		t.Errorf("container reported state: %v", s)
	}
	if err := d.Execute(w, action.Command{Device: "vial", Action: action.MoveRobot}); err == nil {
		t.Fatal("container accepted a motion command")
	}
}

func TestSensorDriver(t *testing.T) {
	w := world.New(1)
	if err := w.AddFixture(&world.Fixture{
		ID: "zone_sensor", Kind: world.KindSensor,
		Body: geom.Box(geom.V(0, -0.5, 0), geom.V(1, 0.5, 0.6)),
	}); err != nil {
		t.Fatal(err)
	}
	d := NewSensorDriver("zone_sensor")
	if d.ID() != "zone_sensor" {
		t.Error("ID wrong")
	}
	// Sensors only answer status queries.
	if err := d.Execute(w, action.Command{Device: "zone_sensor", Action: action.ReadStatus}); err != nil {
		t.Fatal(err)
	}
	if err := d.Execute(w, action.Command{Device: "zone_sensor", Action: action.OpenDoor}); err == nil {
		t.Fatal("sensor accepted a door command")
	}
	s := state.Snapshot{}
	d.ReadState(w, s)
	if s.GetBool(state.ZoneOccupied("zone_sensor")) {
		t.Error("empty zone reported occupied")
	}
	f, _ := w.Fixture("zone_sensor")
	f.Occupied = true
	s = state.Snapshot{}
	d.ReadState(w, s)
	if !s.GetBool(state.ZoneOccupied("zone_sensor")) {
		t.Error("occupied zone reported clear")
	}
	// A frozen sensor keeps reporting clear.
	d.InjectFault(FaultActionStuck)
	s = state.Snapshot{}
	d.ReadState(w, s)
	if s.GetBool(state.ZoneOccupied("zone_sensor")) {
		t.Error("frozen sensor should read clear")
	}
}

func TestArmDriverPickPlaceRoundTrip(t *testing.T) {
	w, d := deckWithArm(t, kin.ModelUR3e)
	if err := w.AddLocation(world.Location{Name: "slot", Pos: geom.V(0.30, 0.10, 0.25)}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddObject(&world.Object{ID: "vial", HeightM: 0.07, RadiusM: 0.012, At: "slot"}); err != nil {
		t.Fatal(err)
	}
	steps := []action.Command{
		{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.30, 0.10, 0.40)},
		{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.30, 0.10, 0.25), Object: "vial"},
		{Device: "arm", Action: action.PickObject},
		{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.30, 0.10, 0.40)},
		{Device: "arm", Action: action.MoveRobot, Target: geom.V(0.30, 0.10, 0.25), Object: "vial"},
		{Device: "arm", Action: action.PlaceObject},
	}
	for i, cmd := range steps {
		if err := d.Execute(w, cmd); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	o, _ := w.Object("vial")
	if o.At != "slot" || o.Broken {
		t.Errorf("vial state after round trip: at=%q broken=%v", o.At, o.Broken)
	}
}
