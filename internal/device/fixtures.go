package device

import (
	"fmt"

	"repro/internal/action"
	"repro/internal/state"
	"repro/internal/world"
)

// FixtureDriver drives a stationary automation device: dosing device,
// syringe pump, hotplate, thermoshaker, centrifuge, decapper, spin
// coater, nozzles.
type FixtureDriver struct {
	id      string
	hasDoor bool
	// firmwareLimit is the device's own built-in safety limit (e.g. the
	// IKA hotplate's safe-temperature setting). It usually sits above
	// the conservative threshold RABIT is configured with — built-in
	// mechanisms "work in tandem" with RABIT, but do not subsume it.
	firmwareLimit float64
	fault         Fault
}

var _ Driver = (*FixtureDriver)(nil)

// NewFixtureDriver builds a driver for a fixture already placed in the
// world.
func NewFixtureDriver(id string, hasDoor bool, firmwareLimit float64) *FixtureDriver {
	return &FixtureDriver{id: id, hasDoor: hasDoor, firmwareLimit: firmwareLimit}
}

// ID implements Driver.
func (d *FixtureDriver) ID() string { return d.id }

// InjectFault implements Driver.
func (d *FixtureDriver) InjectFault(f Fault) { d.fault = f }

// Execute implements Driver.
func (d *FixtureDriver) Execute(w *world.World, cmd action.Command) error {
	switch cmd.Action {
	case action.OpenDoor, action.CloseDoor:
		if !d.hasDoor {
			return fmt.Errorf("device: %s has no door", d.id)
		}
		if d.fault == FaultDoorStuck {
			// The motor is dead but the controller acknowledges.
			return nil
		}
		return w.SetDoorNamed(d.id, cmd.Door, cmd.Action == action.OpenDoor)

	case action.StartAction:
		if d.fault == FaultActionStuck {
			return nil
		}
		return w.StartFixtureAction(d.id)

	case action.StopAction:
		if d.fault == FaultActionStuck {
			return nil
		}
		return w.StopFixtureAction(d.id)

	case action.SetActionValue:
		if d.firmwareLimit > 0 && cmd.Value > d.firmwareLimit {
			return fmt.Errorf("device: %s firmware rejects setpoint %.1f (limit %.1f)",
				d.id, cmd.Value, d.firmwareLimit)
		}
		return w.SetFixtureValue(d.id, cmd.Value)

	case action.DoseSolid:
		return w.DoseSolidInto(d.id, cmd.Value)

	case action.DoseLiquid:
		if cmd.Object == "" {
			return fmt.Errorf("device: %s dose_liquid needs a target container", d.id)
		}
		return w.DoseLiquidInto(d.id, cmd.Object, cmd.Value)

	case action.TransferSubstance:
		return w.TransferSubstance(cmd.FromContainer, cmd.ToContainer, cmd.Value)

	case action.ReadStatus:
		return nil

	default:
		return unknownAction(d.id, cmd.Action)
	}
}

// ReadState implements Driver: doors, run state, setpoints, and the
// centrifuge rotor mark are all observable via status commands.
func (d *FixtureDriver) ReadState(w *world.World, into state.Snapshot) {
	f, ok := w.FixtureStatus(d.id)
	if !ok {
		return
	}
	if d.hasDoor {
		if panels := f.Panels; len(panels) > 0 {
			for _, p := range panels {
				into.Set(state.DoorStatusOf(d.id, p.Name), state.Bool(p.Open))
			}
		} else {
			into.Set(state.DoorStatus(d.id), state.Bool(f.DoorOpen))
		}
	}
	into.Set(state.Running(d.id), state.Bool(f.Running))
	into.Set(state.ActionValue(d.id), state.Float(f.ActionValue))
	if f.Kind == world.KindCentrifuge {
		into.Set(state.RedDotNorth(d.id), state.Bool(f.RedDotNorth))
	}
}

// SensorDriver exposes a presence sensor: a read-only device whose only
// contribution is its observation. It is the "sensors as a new device
// class" extension the paper's Section V-B sketches for protecting
// humans near the deck.
type SensorDriver struct {
	id    string
	fault Fault
}

var _ Driver = (*SensorDriver)(nil)

// NewSensorDriver builds a driver for a presence sensor.
func NewSensorDriver(id string) *SensorDriver { return &SensorDriver{id: id} }

// ID implements Driver.
func (d *SensorDriver) ID() string { return d.id }

// InjectFault implements Driver. FaultActionStuck freezes the reading —
// the sensor malfunction class that made the Berlinguette Lab abandon
// their sensors.
func (d *SensorDriver) InjectFault(f Fault) { d.fault = f }

// Execute implements Driver: sensors only answer status queries.
func (d *SensorDriver) Execute(w *world.World, cmd action.Command) error {
	if cmd.Action == action.ReadStatus {
		return nil
	}
	return unknownAction(d.id, cmd.Action)
}

// ReadState implements Driver: the zone-occupancy reading.
func (d *SensorDriver) ReadState(w *world.World, into state.Snapshot) {
	f, ok := w.FixtureStatus(d.id)
	if !ok {
		return
	}
	occupied := f.Occupied
	if d.fault == FaultActionStuck {
		// A frozen sensor keeps reporting "clear".
		occupied = false
	}
	into.Set(state.ZoneOccupied(d.id), state.Bool(occupied))
}

// ContainerDriver handles cap/decap commands addressed to a container (a
// decapper station or a researcher's hands, from the command stream's
// perspective).
type ContainerDriver struct {
	id    string
	fault Fault
}

var _ Driver = (*ContainerDriver)(nil)

// NewContainerDriver builds a driver for a container.
func NewContainerDriver(id string) *ContainerDriver { return &ContainerDriver{id: id} }

// ID implements Driver.
func (d *ContainerDriver) ID() string { return d.id }

// InjectFault implements Driver.
func (d *ContainerDriver) InjectFault(f Fault) { d.fault = f }

// Execute implements Driver.
func (d *ContainerDriver) Execute(w *world.World, cmd action.Command) error {
	switch cmd.Action {
	case action.CapContainer:
		return w.SetCap(d.id, true)
	case action.DecapContainer:
		return w.SetCap(d.id, false)
	case action.ReadStatus:
		return nil
	default:
		return unknownAction(d.id, cmd.Action)
	}
}

// ReadState implements Driver: containers have no sensors at all; their
// stopper state and contents are dead-reckoned by RABIT's model.
func (d *ContainerDriver) ReadState(w *world.World, into state.Snapshot) {}
