// Package device implements the software layer between RABIT's command
// stream and the physical (simulated) world: per-vendor robot-arm drivers
// and automation-device drivers, including the firmware quirks the
// paper's evaluation turns on — the ViperX silently skipping targets it
// cannot plan to, the Ned2 raising and halting, and devices with
// injectable malfunctions for exercising the Fig. 2 post-state check.
package device

import (
	"errors"
	"fmt"

	"repro/internal/action"
	"repro/internal/state"
	"repro/internal/world"
)

// Fault is an injectable device malfunction.
type Fault int

// Injectable faults.
const (
	FaultNone Fault = iota
	// FaultDoorStuck makes door commands report success without moving
	// the door — the malfunction class the S_expected ≠ S_actual check
	// exists for.
	FaultDoorStuck
	// FaultActionStuck makes start/stop commands report success without
	// changing the run state.
	FaultActionStuck
)

// ErrHalted is returned for commands sent to a halted arm (the Ned2
// behaviour: after a planning failure it refuses further motion).
var ErrHalted = errors.New("device: arm controller halted; requires reset")

// Driver executes commands against the world and reports observable state.
type Driver interface {
	// ID returns the device ID commands address.
	ID() string
	// Execute runs one command.
	Execute(w *world.World, cmd action.Command) error
	// ReadState appends the device's observable state variables — what
	// its status commands report — into the snapshot.
	ReadState(w *world.World, into state.Snapshot)
	// InjectFault arms a malfunction (FaultNone clears it).
	InjectFault(f Fault)
}

// unknownAction builds the common error for commands a driver cannot run.
func unknownAction(id string, a action.Label) error {
	return fmt.Errorf("device: %s does not implement action %q", id, a)
}
