package rabit_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	rabit "repro"
	"repro/internal/obs"
)

// TestTelemetryAgreesWithCheckOverhead is the ISSUE's acceptance
// criterion end to end: run the fig5 workflow on the testbed deck with
// the Extended Simulator, then verify that the live introspection
// endpoints (/debug/vars and /metrics, the same handler -metrics
// serves) report exactly what Engine.CheckOverhead() reports, and that
// the per-stage histograms are populated.
func TestTelemetryAgreesWithCheckOverhead(t *testing.T) {
	sys, err := rabit.NewTestbed(rabit.Options{ExtendedSimulator: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.ReleaseObserver()

	if err := rabit.RunSteps(sys.Session, rabit.Fig5Workflow()); err != nil {
		t.Fatalf("fig5 workflow: %v", err)
	}

	check, commands := sys.Engine.CheckOverhead()
	if commands == 0 || check <= 0 {
		t.Fatalf("workflow ran no checked commands: (%v, %d)", check, commands)
	}

	// The snapshot API and CheckOverhead read the same counters.
	snap := sys.ObsSnapshot()
	if got := snap.Counter(obs.CounterCommands); got != int64(commands) {
		t.Errorf("snapshot commands = %d, CheckOverhead = %d", got, commands)
	}
	if got := snap.Counter(obs.CounterCheckNS); got != check.Nanoseconds() {
		t.Errorf("snapshot check.ns = %d, CheckOverhead = %d", got, check.Nanoseconds())
	}

	// Every Before/After stage fired: validate and compare on each
	// command, trajectory on the robot motions.
	for _, stage := range []string{obs.StageValidate, obs.StageTrajectory, obs.StageCompare} {
		hs, ok := snap.Histogram(stage)
		if !ok || hs.Count == 0 {
			t.Errorf("stage %s histogram empty (ok=%v, %+v)", stage, ok, hs)
		}
	}

	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()

	// Other tests in this package register systems on the same lab, so
	// this system scrapes under a disambiguated alias — find it by its
	// (practically unique) accumulated check time.
	alias := ""
	for _, s := range obs.Snapshots() {
		if s.Counter(obs.CounterCheckNS) == check.Nanoseconds() &&
			s.Counter(obs.CounterCommands) == int64(commands) {
			alias = s.Name
		}
	}
	if alias == "" {
		t.Fatal("scrape group has no snapshot for this system")
	}
	if !strings.HasPrefix(alias, "rabit/"+sys.Lab.Spec.Lab) {
		t.Errorf("alias %q does not carry the registry name", alias)
	}

	// /metrics carries the same command count under that alias.
	body := httpGet(t, srv.URL+"/metrics")
	want := fmt.Sprintf("rabit_commands{reg=%q} %d", alias, commands)
	if !strings.Contains(body, want) {
		t.Errorf("/metrics missing %q", want)
	}
	if !strings.Contains(body, `rabit_before_validate_count`) {
		t.Errorf("/metrics missing the validate stage histogram")
	}

	// /debug/vars exposes the same snapshots under the "rabit" expvar.
	var vars struct {
		Rabit []obs.Snapshot `json:"rabit"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	found := false
	for _, s := range vars.Rabit {
		if s.Name != alias {
			continue
		}
		found = true
		if got := s.Counter(obs.CounterCommands); got != int64(commands) {
			t.Errorf("/debug/vars commands = %d, CheckOverhead = %d", got, commands)
		}
	}
	if !found {
		t.Errorf("/debug/vars has no snapshot for this system")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
